"""Offline construction of the certified thermal ROM basis.

The snapshot plan exploits the structure of the compact model.  At each
of ``flow_points`` trained flow rates the steady response to *any*
block-power vector lies in the span of the boundary-only solve plus the
per-block unit-power responses (the system is linear in ``P``), so
those ``1 + n_blocks`` columns make steady queries at trained flows
exact up to POD truncation.  Short backward-Euler step-response
trajectories add the transient directions the implicit stepper visits.
POD (an SVD of the snapshot matrix) then orders the union by captured
energy and the basis is truncated at ``energy_tol``.

Certification is residual-based but avoids any :math:`O(n)` work per
query: a fixed random orthonormal test matrix ``Phi`` (``sketch_size``
columns) is applied to every residual *factor* offline, so the online
residual norm estimate is a small GEMV.  An effectivity constant
``kappa`` mapping the sketched residual to the observed max-norm error
is calibrated against held-out exact solves at *untrained* flow points,
and every online bound carries a ``safety`` margin on top of it.  The
transient bound accumulates through the step recursion with the decay
factor ``rho = ||(C/dt + A)^{-1} C/dt||_2`` estimated by power
iteration — well below one for these stacks, so per-step contributions
are geometrically forgotten rather than summed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import splu

from ... import constants
from ...obs.metrics import get_registry
from ...obs.trace import get_tracer

ROM_FORMAT_VERSION = 2
"""Serialized-basis format version.

Bumped whenever :class:`RomBasis` changes shape; the on-disk store keys
entries by ``model_hash`` *and* this version, so a format change can
never deserialize a stale artifact.
"""


@dataclass(frozen=True)
class RomOptions:
    """Offline build plan and certification knobs of the thermal ROM.

    Attributes
    ----------
    max_modes:
        Hard cap on the POD basis size ``r`` (the energy cut usually
        binds first).
    energy_tol:
        POD truncation threshold: retain modes until the discarded
        singular-value energy fraction drops below this.
    flow_points:
        Trained flow rates (linearly spaced over the pump range).
        Steady responses at these flows are in-span by construction;
        between them the basis interpolates and the residual bound
        grows smoothly.
    flow_min_ml_min, flow_max_ml_min:
        Trained flow range; defaults to the paper's pump envelope
        (:data:`repro.constants.FLOW_RATE_MIN_ML_MIN` ..
        :data:`repro.constants.FLOW_RATE_MAX_ML_MIN`).  Queries outside
        it are out of the trust region and fall back.
    transient_snapshots:
        Step-response states collected per trained flow.
    snapshot_dt:
        Step length of the snapshot trajectories and of the calibrated
        transient certification; the reduced stepper only serves steps
        at this dt (others fall back).  Defaults to the paper's 100 ms
        sensor period.
    power_scale_w:
        Per-block power scale of the snapshot/calibration draws [W].
        Linearity makes the calibrated effectivity scale-invariant, so
        this only needs the right order of magnitude.
    sketch_size:
        Columns of the random residual test matrix ``Phi``.
    safety:
        Multiplier on the calibrated effectivity constant; absorbs both
        sketch concentration and calibration sampling error.
    tolerance_k:
        Certified error tolerance ``rom_tol`` [K]; queries whose bound
        exceeds it fall back to the exact backend.
    flow_grid:
        Quantization levels of the transient per-flow operator cache.
        The solve uses the nearest grid operator plus one reduced-space
        refinement at the true flow coefficient; certification always
        evaluates the residual at the *true* coefficient, so
        quantization error is covered by the bound, not assumed away.
    validation_queries:
        Held-out exact steady solves used to calibrate the effectivity
        constant (each at an untrained random flow).
    transient_calibration_steps:
        Exact transient steps used to calibrate the per-step transient
        effectivity.
    seed:
        Seed of every random draw in the build (snapshot powers, the
        sketch matrix, calibration queries) — builds are deterministic.
    """

    max_modes: int = 128
    energy_tol: float = 1e-12
    flow_points: int = 7
    flow_min_ml_min: Optional[float] = None
    flow_max_ml_min: Optional[float] = None
    transient_snapshots: int = 10
    snapshot_dt: float = constants.SENSOR_PERIOD
    power_scale_w: float = 3.0
    sketch_size: int = 16
    safety: float = 8.0
    tolerance_k: float = 0.5
    flow_grid: int = 65
    validation_queries: int = 12
    transient_calibration_steps: int = 20
    seed: int = 20260807

    def __post_init__(self) -> None:
        if self.max_modes < 1:
            raise ValueError("max_modes must be at least 1")
        if not 0.0 < self.energy_tol < 1.0:
            raise ValueError("energy_tol must be in (0, 1)")
        if self.flow_points < 1:
            raise ValueError("flow_points must be at least 1")
        if self.transient_snapshots < 0:
            raise ValueError("transient_snapshots must be >= 0")
        if self.snapshot_dt <= 0.0:
            raise ValueError("snapshot_dt must be positive")
        if self.sketch_size < 1:
            raise ValueError("sketch_size must be at least 1")
        if self.safety < 1.0:
            raise ValueError("safety must be >= 1")
        if self.tolerance_k <= 0.0:
            raise ValueError("tolerance_k must be positive")
        if self.flow_grid < 1:
            raise ValueError("flow_grid must be at least 1")
        if self.validation_queries < 1:
            raise ValueError("validation_queries must be at least 1")
        if self.transient_calibration_steps < 1:
            raise ValueError("transient_calibration_steps must be >= 1")


@dataclass
class RomBasis:
    """Everything the online query engine needs, picklable as one blob.

    All arrays are dense ``float64``; the dominant member is ``V``
    (``n x r``, a few MB at the paper's grid).  The reduced operators
    follow the model's affine flow decomposition, e.g.
    ``A_hat(c) = ab_r + c * aa_r``.
    """

    format_version: int
    options: RomOptions
    # -- fingerprint of the model the basis was built from ------------
    n_nodes: int
    n_blocks: int
    inlet_temperature: float
    ambient: float
    has_flow: bool
    flow_lo: float
    flow_hi: float
    c_lo: float
    c_hi: float
    # -- projection and reduced operators ------------------------------
    V: np.ndarray  # n x r
    ab_r: np.ndarray  # r x r   V^T A_base V
    aa_r: np.ndarray  # r x r   V^T A_adv V
    c_r: np.ndarray  # r x r   V^T diag(C) V
    w_r: np.ndarray  # r x nb  V^T Inj
    vb_base: np.ndarray  # r     V^T b_base
    vb_adv: np.ndarray  # r     V^T b_adv
    block_reduce: np.ndarray  # nb x r  block-mean of V y
    # -- sketched residual factors --------------------------------------
    phi: np.ndarray  # n x k   orthonormal test matrix
    pu0: np.ndarray  # k x r   Phi^T diag(C) V
    pu1: np.ndarray  # k x r   Phi^T A_base V
    pu2: np.ndarray  # k x r   Phi^T A_adv V
    p_inj: np.ndarray  # k x nb  Phi^T Inj
    pb_base: np.ndarray  # k
    pb_adv: np.ndarray  # k
    pv: np.ndarray  # k x r   Phi^T V (projection-error sketch)
    sketch_scale: float  # sqrt(n / k): sketch norm -> 2-norm estimate
    # -- certification constants ---------------------------------------
    kappa_steady: float
    kappa_transient: float
    kappa_sync: float
    rho: float
    build_seconds: float = 0.0
    trained_flows: List[float] = field(default_factory=list)

    @property
    def modes(self) -> int:
        return int(self.V.shape[1])

    def matches(self, model) -> bool:
        """Whether this basis fingerprints the given model's system."""
        return (
            self.format_version == ROM_FORMAT_VERSION
            and self.n_nodes == model.grid.size
            and self.n_blocks == len(model.block_order)
            and self.inlet_temperature == model.inlet_temperature
            and self.ambient == model.ambient
        )

    def capacity_rate(self, flow_ml_min: float) -> float:
        """``c(f)`` by interpolation of the trained endpoints.

        ``c`` is exactly linear in the flow rate (``rho cp Q / ny``),
        so interpolating the trained endpoints reproduces the model's
        coefficient to rounding error.  Integrated callers pass the
        model's own value instead; this covers standalone use.
        """
        if not self.has_flow:
            return 0.0
        if self.flow_hi == self.flow_lo:
            return self.c_lo
        t = (flow_ml_min - self.flow_lo) / (self.flow_hi - self.flow_lo)
        return self.c_lo + t * (self.c_hi - self.c_lo)


def _pod(snapshots: np.ndarray, options: RomOptions) -> np.ndarray:
    """POD truncation of the snapshot matrix to the energy cut."""
    u, sv, _ = np.linalg.svd(snapshots, full_matrices=False)
    energy = np.cumsum(sv**2)
    total = energy[-1]
    if total <= 0.0:
        return np.ascontiguousarray(u[:, :1])
    tail = 1.0 - energy / total
    below = np.nonzero(tail < options.energy_tol)[0]
    r = int(below[0]) + 1 if below.size else len(sv)
    r = max(1, min(r, options.max_modes, u.shape[1]))
    return np.ascontiguousarray(u[:, :r])


def build_rom_basis(model, options: Optional[RomOptions] = None) -> RomBasis:
    """Build (offline) the certified ROM basis of one assembled model.

    Runs entirely against the exact operators — snapshot solves,
    calibration solves and the decay-factor power iteration all use
    fresh SuperLU factorizations, never the model's steady cache, so
    the model's flow state and caches are untouched.
    """
    import time as _time

    from ..model import SPLU_OPTIONS

    options = options if options is not None else RomOptions()
    tracer = get_tracer()
    registry = get_registry()
    start = _time.perf_counter()
    with tracer.span(
        "rom.build", nodes=model.grid.size, modes_cap=options.max_modes
    ) as span:
        rng = np.random.default_rng(options.seed)
        n = model.grid.size
        injection = model.injection_operator()
        nb = injection.shape[1]
        inj_dense = np.asarray(injection.todense())
        capacitance = model.capacitance
        dt = options.snapshot_dt
        t_in = model.inlet_temperature

        has_flow = bool(model.cavity_flows)
        if has_flow:
            flow_lo = (
                constants.FLOW_RATE_MIN_ML_MIN
                if options.flow_min_ml_min is None
                else options.flow_min_ml_min
            )
            flow_hi = (
                constants.FLOW_RATE_MAX_ML_MIN
                if options.flow_max_ml_min is None
                else options.flow_max_ml_min
            )
            if not flow_hi >= flow_lo > 0.0:
                raise ValueError(
                    f"invalid trained flow range [{flow_lo}, {flow_hi}]"
                )
            points = max(2, options.flow_points) if flow_hi > flow_lo else 1
            flows: List[Optional[float]] = list(
                np.linspace(flow_lo, flow_hi, points)
            )
        else:
            # Air-cooled / two-phase stacks have no flow dependence:
            # one snapshot family at c = 0 covers the whole input space.
            flow_lo = flow_hi = 0.0
            flows = [None]

        # -- snapshots --------------------------------------------------
        snapshots: List[np.ndarray] = []
        factors = []
        for flow in flows:
            matrix = model.system_matrix(flow)
            factor = splu(matrix.tocsc(), **SPLU_OPTIONS)
            factors.append(factor)
            boundary = model.boundary_rhs(flow)
            rest = factor.solve(boundary)
            snapshots.append(rest)
            snapshots.extend(factor.solve(inj_dense).T)
            if options.transient_snapshots:
                stepper_factor = splu(
                    (matrix + diags(capacitance / dt)).tocsc(), **SPLU_OPTIONS
                )
                state = rest.copy()
                powers = inj_dense @ (
                    options.power_scale_w * rng.uniform(0.2, 1.0, nb)
                )
                for _ in range(options.transient_snapshots):
                    state = stepper_factor.solve(
                        (capacitance / dt) * state + powers + boundary
                    )
                    snapshots.append(state.copy())

        basis_v = _pod(np.array(snapshots).T, options)
        r = basis_v.shape[1]

        # -- reduced operators and sketched residual factors ------------
        a_base = model._a_base
        a_adv = model._a_adv
        ab_r = basis_v.T @ (a_base @ basis_v)
        aa_r = basis_v.T @ (a_adv @ basis_v)
        c_r = basis_v.T @ (capacitance[:, None] * basis_v)
        w_r = basis_v.T @ inj_dense
        vb_base = basis_v.T @ model._b_base
        vb_adv = basis_v.T @ model._b_adv

        k = min(options.sketch_size, n)
        phi, _ = np.linalg.qr(rng.standard_normal((n, k)))
        phi = np.ascontiguousarray(phi)
        sketch_scale = float(np.sqrt(n / k))
        pu0 = (phi.T * capacitance) @ basis_v
        pu1 = phi.T @ (a_base @ basis_v)
        pu2 = phi.T @ (a_adv @ basis_v)
        p_inj = phi.T @ inj_dense
        pb_base = phi.T @ model._b_base
        pb_adv = phi.T @ model._b_adv
        pv = phi.T @ basis_v

        block_reduce = _block_mean_operator(model) @ basis_v

        c_lo = (
            model._capacity_rate_per_row(flow_lo) if has_flow else 0.0
        )
        c_hi = (
            model._capacity_rate_per_row(flow_hi) if has_flow else 0.0
        )

        # -- decay factor rho of the transient bound recursion ----------
        rho = 0.0
        for flow in (flows[0], flows[-1]):
            matrix = model.system_matrix(flow)
            factor_m = splu(
                (matrix + diags(capacitance / dt)).tocsc(), **SPLU_OPTIONS
            )
            vec = np.full(n, 1.0 / np.sqrt(n))
            norm = 0.0
            for _ in range(30):
                vec = factor_m.solve((capacitance / dt) * vec)
                norm = float(np.linalg.norm(vec))
                if norm == 0.0:
                    break
                vec /= norm
            rho = max(rho, norm)
        # 5 % margin over the power-iteration estimate, capped below 1
        # so the accumulated bound always converges.
        rho = min(rho * 1.05, 0.95)

        # -- effectivity calibration (steady + sync) --------------------
        # kappa_sync maps the sketched l2 projection residual to the
        # inf-norm projection error.  The l2 norm spreads over sqrt(n)
        # nodes, so the honest ratio is well below 1 on large grids;
        # without it the stepper's sync bound grows with grid size and
        # the transient ROM can never engage on the paper's 4-tier
        # stack.  The exact solves of the steady calibration double as
        # held-out states for it.
        kappa_steady = 1.0
        kappa_sync = 0.0
        for _ in range(options.validation_queries):
            if has_flow and flow_hi > flow_lo:
                flow = float(rng.uniform(flow_lo, flow_hi))
            else:
                flow = flows[0]
            c = (
                model._capacity_rate_per_row(flow)
                if has_flow
                else 0.0
            )
            packed = options.power_scale_w * rng.uniform(0.0, 1.0, nb)
            g_r = ab_r + c * aa_r
            q_r = w_r @ packed + vb_base + c * t_in * vb_adv
            y = np.linalg.solve(g_r, q_r)
            est = (
                float(
                    np.linalg.norm(
                        p_inj @ packed
                        + pb_base
                        + c * t_in * pb_adv
                        - (pu1 @ y + c * (pu2 @ y))
                    )
                )
                * sketch_scale
            )
            matrix = model.system_matrix(flow)
            exact = splu(matrix.tocsc(), **SPLU_OPTIONS).solve(
                inj_dense @ packed + model.boundary_rhs(flow)
            )
            err = float(np.max(np.abs(basis_v @ y - exact)))
            if est > 0.0:
                kappa_steady = max(kappa_steady, err / est)
            y_proj = basis_v.T @ exact
            est_sync = (
                float(np.linalg.norm(phi.T @ exact - pv @ y_proj))
                * sketch_scale
            )
            err_sync = float(
                np.max(np.abs(exact - basis_v @ y_proj))
            )
            if est_sync > 0.0:
                kappa_sync = max(kappa_sync, err_sync / est_sync)
        if kappa_sync <= 0.0:
            kappa_sync = 1.0

        # -- effectivity calibration (transient, per-step) ---------------
        # Floored at 1, not at kappa_steady: the steady worst case maps
        # a residual through G^-1, the step recursion through the far
        # better conditioned (C/dt + A)^-1, so inheriting the steady
        # amplification triples the per-step bound for nothing.
        kappa_transient = 1.0
        flow = (
            float(0.5 * (flow_lo + flow_hi)) if has_flow else flows[0]
        )
        c = model._capacity_rate_per_row(flow) if has_flow else 0.0
        matrix = model.system_matrix(flow)
        factor_m = splu(
            (matrix + diags(capacitance / dt)).tocsc(), **SPLU_OPTIONS
        )
        boundary = model.boundary_rhs(flow)
        exact_state = splu(matrix.tocsc(), **SPLU_OPTIONS).solve(boundary)
        y = basis_v.T @ exact_state
        m_inv = np.linalg.inv(c_r / dt + ab_r + c * aa_r)
        prev_err = float(np.max(np.abs(basis_v @ y - exact_state)))
        for _ in range(options.transient_calibration_steps):
            packed = options.power_scale_w * rng.uniform(0.0, 1.0, nb)
            q_r = w_r @ packed + vb_base + c * t_in * vb_adv
            y_new = m_inv @ ((c_r / dt) @ y + q_r)
            est = (
                float(
                    np.linalg.norm(
                        (pu0 / dt) @ (y - y_new)
                        - (pu1 @ y_new + c * (pu2 @ y_new))
                        + p_inj @ packed
                        + pb_base
                        + c * t_in * pb_adv
                    )
                )
                * sketch_scale
            )
            exact_state = factor_m.solve(
                (capacitance / dt) * exact_state
                + inj_dense @ packed
                + boundary
            )
            err = float(np.max(np.abs(basis_v @ y_new - exact_state)))
            contribution = max(err - rho * prev_err, 0.0)
            if est > 0.0:
                kappa_transient = max(kappa_transient, contribution / est)
            prev_err = err
            y = y_new

        build_seconds = _time.perf_counter() - start
        basis = RomBasis(
            format_version=ROM_FORMAT_VERSION,
            options=options,
            n_nodes=n,
            n_blocks=nb,
            inlet_temperature=t_in,
            ambient=model.ambient,
            has_flow=has_flow,
            flow_lo=float(flow_lo),
            flow_hi=float(flow_hi),
            c_lo=float(c_lo),
            c_hi=float(c_hi),
            V=basis_v,
            ab_r=ab_r,
            aa_r=aa_r,
            c_r=c_r,
            w_r=w_r,
            vb_base=vb_base,
            vb_adv=vb_adv,
            block_reduce=block_reduce,
            phi=phi,
            pu0=pu0,
            pu1=pu1,
            pu2=pu2,
            p_inj=p_inj,
            pb_base=pb_base,
            pb_adv=pb_adv,
            pv=pv,
            sketch_scale=sketch_scale,
            kappa_steady=float(kappa_steady),
            kappa_transient=float(kappa_transient),
            kappa_sync=float(kappa_sync),
            rho=float(rho),
            build_seconds=build_seconds,
            trained_flows=[f for f in flows if f is not None],
        )
        registry.counter("rom.builds").inc()
        registry.gauge("rom.modes").set(r)
        if tracer.has_sinks:
            span.set(
                modes=r,
                kappa_steady=basis.kappa_steady,
                kappa_transient=basis.kappa_transient,
                kappa_sync=basis.kappa_sync,
                rho=basis.rho,
                seconds=build_seconds,
            )
        return basis


def _block_mean_operator(model) -> np.ndarray:
    """Dense ``nb x n`` block-mean reduction matrix of the model."""
    masks = model.block_masks()
    n = model.grid.size
    order = model.block_order
    reduce = np.zeros((len(order), n))
    for row, ref in enumerate(order):
        level = model.grid.level_of(ref[0])
        cells = model.grid.flat_indices(level, masks[ref])
        reduce[row, cells] = 1.0 / cells.size
    return reduce


def with_spec_overrides(options: RomOptions, **overrides) -> RomOptions:
    """A copy of ``options`` with non-None overrides applied."""
    applied = {k: v for k, v in overrides.items() if v is not None}
    return replace(options, **applied) if applied else options
