"""Online certified queries against a prebuilt ROM basis.

The hot paths never touch an ``n``-dimensional vector:

* a **steady query** folds the reduced solve, the sketched residual and
  the block-mean output into three small per-flow matrices, so each
  certified query is three dense GEMVs plus vector adds (~10 us at the
  paper's grid, vs ~1 ms for a warm direct LU solve);
* a **transient step** applies the cached reduced backward-Euler
  propagator of the nearest quantized flow point, corrects with one
  reduced-space refinement at the *true* flow coefficient, and
  certifies with the sketched residual — all in ``r``-dimensional
  arithmetic.

Certification semantics: ``bound = safety * kappa * sketch_estimate``
with ``kappa`` the offline-calibrated effectivity constant (see
:mod:`repro.thermal.rom.basis`).  The transient bound accumulates as
``bound <- rho * bound + step_contribution``.  Whenever a bound would
exceed ``tolerance_k``, or an input leaves the trust region (untrained
flow range, non-uniform per-cavity flows, foreign dt), the query raises
:class:`RomRejection` *before* committing any reduced state — callers
fall back to the exact backend and the rejected query leaves no trace
in the ROM state, which is what makes the fallback bitwise-exact.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ...obs.metrics import get_registry
from .basis import RomBasis

_STEADY_OPS_CACHE = 32
"""Per-flow folded steady operators retained (LRU)."""

_FLOW_TRUST_MARGIN = 1e-9
"""Relative slack on the trained flow range (float-roundoff guard)."""


class RomRejection(Exception):
    """A query the ROM refuses to serve; callers fall back to exact.

    Attributes
    ----------
    reason:
        ``"flow-range"``, ``"flow-nonuniform"``, ``"dt"`` or
        ``"bound"``.
    bound:
        The certified error bound that tripped the rejection, when the
        reason is ``"bound"``.
    """

    def __init__(self, reason: str, message: str, bound: Optional[float] = None):
        super().__init__(message)
        self.reason = reason
        self.bound = bound


class ReducedThermalModel:
    """Certified reduced queries of one :class:`RomBasis`.

    Thread-compatible with the model layer's single-threaded use; the
    per-flow operator caches are plain LRU dicts.
    """

    def __init__(self, basis: RomBasis) -> None:
        self.basis = basis
        self.tolerance_k = basis.options.tolerance_k
        self._steady_ops: "OrderedDict[float, tuple]" = OrderedDict()
        registry = get_registry()
        self._c_steady = registry.counter("rom.steady_queries")
        self._c_steps = registry.counter("rom.transient_steps")
        self._c_bound = registry.counter("rom.bound_exceeded")
        self._c_trust = registry.counter("rom.trust_rejected")

    # -- trust region ---------------------------------------------------

    def check_flow(self, flow_ml_min: Optional[float]) -> float:
        """Trust-check a flow request; returns the capacity rate ``c``.

        ``None`` is only acceptable for flow-independent stacks.
        """
        basis = self.basis
        if not basis.has_flow:
            return 0.0
        if flow_ml_min is None:
            self._c_trust.inc()
            raise RomRejection(
                "flow-nonuniform",
                "the ROM serves uniform per-cavity flows only",
            )
        margin = _FLOW_TRUST_MARGIN * max(1.0, abs(basis.flow_hi))
        if not (
            basis.flow_lo - margin <= flow_ml_min <= basis.flow_hi + margin
        ):
            self._c_trust.inc()
            raise RomRejection(
                "flow-range",
                f"flow {flow_ml_min:g} ml/min is outside the trained "
                f"range [{basis.flow_lo:g}, {basis.flow_hi:g}]",
            )
        return basis.capacity_rate(float(flow_ml_min))

    # -- steady path ----------------------------------------------------

    def _steady_operators(self, c: float) -> tuple:
        """Folded per-flow steady operators (exact-``c`` LRU cache).

        ``y = y_p @ p + y_0`` solves the reduced steady system,
        ``s_p @ p + s_0`` is the sketched residual and
        ``b_p @ p + b_0`` the block-mean output — one GEMV each.
        """
        ops = self._steady_ops.get(c)
        if ops is not None:
            self._steady_ops.move_to_end(c)
            return ops
        basis = self.basis
        g_inv = np.linalg.inv(basis.ab_r + c * basis.aa_r)
        y_p = g_inv @ basis.w_r
        y_0 = g_inv @ (
            basis.vb_base + c * basis.inlet_temperature * basis.vb_adv
        )
        pk = basis.pu1 + c * basis.pu2
        s_p = basis.p_inj - pk @ y_p
        s_0 = (
            basis.pb_base
            + c * basis.inlet_temperature * basis.pb_adv
            - pk @ y_0
        )
        b_p = basis.block_reduce @ y_p
        b_0 = basis.block_reduce @ y_0
        ops = (y_p, y_0, s_p, s_0, b_p, b_0)
        self._steady_ops[c] = ops
        if len(self._steady_ops) > _STEADY_OPS_CACHE:
            self._steady_ops.popitem(last=False)
        return ops

    def steady_reduced(
        self,
        packed_powers: np.ndarray,
        flow_ml_min: Optional[float],
        capacity_rate: Optional[float] = None,
    ) -> Tuple[np.ndarray, float]:
        """Certified reduced steady solve; ``(y, bound)``.

        Raises :class:`RomRejection` out of trust or over tolerance.
        """
        c = (
            self.check_flow(flow_ml_min)
            if capacity_rate is None
            else self._trusted_rate(flow_ml_min, capacity_rate)
        )
        y_p, y_0, s_p, s_0, _, _ = self._steady_operators(c)
        y = y_p @ packed_powers + y_0
        estimate = float(
            np.linalg.norm(s_p @ packed_powers + s_0)
        ) * self.basis.sketch_scale
        bound = (
            self.basis.options.safety * self.basis.kappa_steady * estimate
        )
        self._c_steady.inc()
        if bound > self.tolerance_k:
            self._c_bound.inc()
            raise RomRejection(
                "bound",
                f"certified steady bound {bound:.3g} K exceeds "
                f"rom_tol {self.tolerance_k:g} K",
                bound=bound,
            )
        return y, bound

    def _trusted_rate(
        self, flow_ml_min: Optional[float], capacity_rate: float
    ) -> float:
        """Trust-check a caller-supplied exact capacity rate."""
        self.check_flow(flow_ml_min)
        return float(capacity_rate)

    def steady_block_temps(
        self,
        packed_powers: np.ndarray,
        flow_ml_min: Optional[float],
        capacity_rate: Optional[float] = None,
    ) -> Tuple[np.ndarray, float]:
        """Certified block-mean temperatures; the interactive fast path.

        Three GEMVs end to end: reduced solve, sketched certification,
        block-mean output.  Returns ``(block_temps, bound_k)`` in the
        model's canonical block order.
        """
        c = (
            self.check_flow(flow_ml_min)
            if capacity_rate is None
            else self._trusted_rate(flow_ml_min, capacity_rate)
        )
        y_p, y_0, s_p, s_0, b_p, b_0 = self._steady_operators(c)
        estimate = float(
            np.linalg.norm(s_p @ packed_powers + s_0)
        ) * self.basis.sketch_scale
        bound = (
            self.basis.options.safety * self.basis.kappa_steady * estimate
        )
        self._c_steady.inc()
        if bound > self.tolerance_k:
            self._c_bound.inc()
            raise RomRejection(
                "bound",
                f"certified steady bound {bound:.3g} K exceeds "
                f"rom_tol {self.tolerance_k:g} K",
                bound=bound,
            )
        return b_p @ packed_powers + b_0, bound

    def steady_values(
        self,
        packed_powers: np.ndarray,
        flow_ml_min: Optional[float],
        capacity_rate: Optional[float] = None,
    ) -> Tuple[np.ndarray, float]:
        """Certified full-field steady solve; ``(values, bound)``.

        Reconstruction (``V y``) is one ``n x r`` GEMV — off the
        microsecond path but still ~10x cheaper than a warm LU solve.
        """
        y, bound = self.steady_reduced(
            packed_powers, flow_ml_min, capacity_rate
        )
        return self.basis.V @ y, bound

    # -- transient path -------------------------------------------------

    def stepper(self, dt: float, initial_values: np.ndarray) -> "ReducedStepper":
        """A certified reduced stepper synced to a full-field state."""
        return ReducedStepper(self, dt, initial_values)


class ReducedStepper:
    """Reduced backward-Euler stepping with an accumulated error bound.

    The reduced state ``y`` lives entirely in ``r`` dimensions;
    :meth:`values` reconstructs on demand.  ``bound`` tracks a
    certified estimate of ``max |V y - T_exact|`` accumulated through
    the step recursion; a step that would push it past the tolerance
    raises :class:`RomRejection` *without* committing the step, so the
    caller's exact fallback starts from an uncorrupted state.
    """

    def __init__(
        self, rom: ReducedThermalModel, dt: float, initial_values: np.ndarray
    ) -> None:
        basis = rom.basis
        snapshot_dt = basis.options.snapshot_dt
        if abs(dt - snapshot_dt) > 1e-12 * max(1.0, snapshot_dt):
            rom._c_trust.inc()
            raise RomRejection(
                "dt",
                f"dt={dt:g} s differs from the calibrated snapshot dt "
                f"{snapshot_dt:g} s",
            )
        self.rom = rom
        self.basis = basis
        self.dt = float(dt)
        self._c_over_dt = basis.c_r / self.dt
        self._pu0_over_dt = basis.pu0 / self.dt
        self._grid_ops: Dict[int, tuple] = {}
        self.sync(initial_values)

    def sync(self, values: np.ndarray) -> None:
        """Re-project a full-field state into the reduced coordinates.

        The initial bound is a sketched estimate of the projection
        error ``||values - V y||`` — zero when the state came from the
        ROM itself, small when it came from an exact solve the basis
        spans well.  ``kappa_sync`` converts the l2-norm sketch into a
        calibrated inf-norm bound; without it the grid-size inflation
        (sqrt(n)) of the l2 norm keeps the transient ROM from ever
        engaging on large stacks.
        """
        basis = self.basis
        self.y = basis.V.T @ values
        estimate = float(
            np.linalg.norm(basis.phi.T @ values - basis.pv @ self.y)
        ) * basis.sketch_scale
        self.bound = (
            basis.options.safety * basis.kappa_sync * estimate
        )

    def _grid_index(self, c: float) -> int:
        basis = self.basis
        if basis.c_hi <= basis.c_lo:
            return 0
        span = basis.c_hi - basis.c_lo
        levels = basis.options.flow_grid
        index = int(round((c - basis.c_lo) / span * (levels - 1)))
        return min(max(index, 0), levels - 1)

    def _propagator(self, index: int) -> tuple:
        """Cached reduced propagator of one quantized flow point."""
        ops = self._grid_ops.get(index)
        if ops is None:
            basis = self.basis
            if basis.c_hi <= basis.c_lo:
                c_grid = basis.c_lo
            else:
                c_grid = basis.c_lo + index * (
                    (basis.c_hi - basis.c_lo)
                    / (basis.options.flow_grid - 1)
                )
            m_inv = np.linalg.inv(
                self._c_over_dt + basis.ab_r + c_grid * basis.aa_r
            )
            ops = (m_inv, m_inv @ self._c_over_dt)
            self._grid_ops[index] = ops
        return ops

    def step_packed(
        self,
        packed_powers: np.ndarray,
        flow_ml_min: Optional[float],
        capacity_rate: Optional[float] = None,
    ) -> float:
        """Advance one certified reduced step; returns the new bound.

        The solve uses the nearest quantized-flow propagator plus one
        reduced-space refinement at the true coefficient; the sketched
        residual is always evaluated at the true coefficient, so the
        quantization error is certified, not assumed.
        """
        rom = self.rom
        basis = self.basis
        if capacity_rate is None:
            c = rom.check_flow(flow_ml_min)
        else:
            rom.check_flow(flow_ml_min)
            c = float(capacity_rate)
        m_inv, z = self._propagator(self._grid_index(c))
        q_r = basis.w_r @ packed_powers + basis.vb_base + (
            c * basis.inlet_temperature
        ) * basis.vb_adv
        y = self.y
        y_new = z @ y + m_inv @ q_r
        refinement = (
            self._c_over_dt @ (y - y_new)
            - (basis.ab_r @ y_new + c * (basis.aa_r @ y_new))
            + q_r
        )
        y_new = y_new + m_inv @ refinement
        estimate = float(
            np.linalg.norm(
                self._pu0_over_dt @ (y - y_new)
                - (basis.pu1 @ y_new + c * (basis.pu2 @ y_new))
                + basis.p_inj @ packed_powers
                + basis.pb_base
                + (c * basis.inlet_temperature) * basis.pb_adv
            )
        ) * basis.sketch_scale
        new_bound = basis.rho * self.bound + (
            basis.options.safety * basis.kappa_transient * estimate
        )
        if new_bound > rom.tolerance_k:
            rom._c_bound.inc()
            raise RomRejection(
                "bound",
                f"certified transient bound {new_bound:.3g} K exceeds "
                f"rom_tol {rom.tolerance_k:g} K",
                bound=new_bound,
            )
        self.y = y_new
        self.bound = new_bound
        rom._c_steps.inc()
        return new_bound

    def block_temps(self) -> np.ndarray:
        """Block-mean temperatures of the current reduced state."""
        return self.basis.block_reduce @ self.y

    def values(self) -> np.ndarray:
        """Reconstructed full temperature field (one ``n x r`` GEMV)."""
        return self.basis.V @ self.y
