"""Atomic on-disk persistence of serialized ROM bases.

Bases are expensive to build (seconds of exact solves per stack) and
cheap to load (one pickle of a few MB), so they are cached next to the
scenario result cache, keyed by the scenario's ``model_hash`` — which
covers the stack *and* solver spec, including the ``RomSpec`` — plus
the ROM format version and the package version.  Writes are atomic
(temp file + rename) and reads are guarded: any unreadable, truncated
or foreign payload is treated as a miss and rebuilt, mirroring
:class:`repro.scenario.cache.ResultCache`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from ... import __version__
from ...obs.metrics import get_registry
from ...obs.trace import get_tracer
from .basis import ROM_FORMAT_VERSION, RomBasis


class RomStore:
    """Filesystem store of :class:`RomBasis` blobs under one root."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        registry = get_registry()
        self._c_hits = registry.counter("rom.store.hits")
        self._c_misses = registry.counter("rom.store.misses")
        self._c_corrupt = registry.counter("rom.store.corrupt")

    def _corrupt_miss(self, path: Path, reason: str) -> None:
        """A damaged persisted basis is a counted, traced miss.

        The caller falls through to the offline rebuild exactly as on
        an absent entry — same policy as
        :class:`~repro.scenario.cache.ResultCache` corrupt entries —
        but the damage is never silent: it feeds the
        ``rom.store.corrupt`` counter and a trace event.
        """
        self._c_corrupt.inc()
        self._c_misses.inc()
        get_tracer().event(
            "rom.store_corrupt", path=path.name, reason=reason
        )

    def path(self, model_hash: str) -> Path:
        """On-disk location of one model's serialized basis."""
        return self.root / (
            f"rom-{model_hash}-fmt{ROM_FORMAT_VERSION}-v{__version__}.pkl"
        )

    def get(self, model_hash: str) -> Optional[RomBasis]:
        """The stored basis, or ``None`` on a miss or corrupt entry."""
        path = self.path(model_hash)
        try:
            blob = path.read_bytes()
        except OSError:
            self._c_misses.inc()
            return None
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            # Truncated/corrupt blob (e.g. a killed writer predating the
            # atomic-write path, or a partial copy): miss, rebuild.
            self._corrupt_miss(path, type(exc).__name__)
            return None
        if not isinstance(payload, RomBasis):
            self._corrupt_miss(path, type(payload).__name__)
            return None
        if payload.format_version != ROM_FORMAT_VERSION:
            # A foreign format version is staleness, not damage.
            self._c_misses.inc()
            return None
        self._c_hits.inc()
        return payload

    def put(self, model_hash: str, basis: RomBasis) -> Path:
        """Store a basis atomically; returns its path."""
        path = self.path(model_hash)
        self.root.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as tmp:
                pickle.dump(basis, tmp, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path
