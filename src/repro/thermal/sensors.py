"""On-die temperature sensors.

Section IV-A: "each core has a temperature sensor, which is able to
provide temperature readings at regular intervals (e.g., every 100 ms)".
The sensor layer turns a full temperature field into the per-core
readings the run-time policies consume, optionally with Gaussian noise
and quantisation to emulate real thermal diodes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .field import BlockReduction, TemperatureField
from .model import BlockRef, CompactThermalModel

SensorFault = Callable[[float, float], float]
"""A sensor fault transform: ``(time [s], true reading [K]) -> reading [K]``.

Concrete fault models (stuck-at, dead returning NaN, extra noise) live
in :mod:`repro.faults.models`; the sensor layer only applies them, so
the thermal package stays free of fault-campaign concerns.
"""


class TemperatureSensors:
    """Per-block temperature sensors over a thermal model.

    Parameters
    ----------
    model:
        The thermal model being observed.
    refs:
        Blocks to instrument; defaults to every core block.
    noise_sigma:
        Standard deviation of additive Gaussian read noise [K].
    quantisation:
        Sensor LSB [K]; zero disables quantisation.
    seed:
        RNG seed for reproducible noise.
    """

    def __init__(
        self,
        model: CompactThermalModel,
        refs: Optional[List[BlockRef]] = None,
        noise_sigma: float = 0.0,
        quantisation: float = 0.0,
        seed: int = 0,
    ) -> None:
        if noise_sigma < 0.0 or quantisation < 0.0:
            raise ValueError("noise and quantisation must be non-negative")
        self.model = model
        if refs is None:
            refs = [
                (layer.name, block.name)
                for layer, block in model.stack.iter_blocks()
                if block.kind == "core"
            ]
        if not refs:
            raise ValueError("no sensor locations given")
        self.refs = list(refs)
        all_masks = model.block_masks()
        self._masks = {ref: all_masks[ref] for ref in self.refs}
        self._reduction = BlockReduction(model.grid, self._masks)
        self.noise_sigma = noise_sigma
        self.quantisation = quantisation
        self._rng = np.random.default_rng(seed)
        self._faults: Dict[BlockRef, SensorFault] = {}

    def install_fault(self, ref: BlockRef, fault: SensorFault) -> None:
        """Attach a fault transform to one sensor (replacing any prior).

        The transform is applied last in :meth:`read`, after noise and
        quantisation — it models a defect of the sensor output, not of
        the die.  A dead sensor returns ``nan``; policies detect the
        loss through the non-finite reading.
        """
        if ref not in self._masks:
            raise KeyError(f"no sensor at {ref!r} (have {sorted(self._masks)})")
        self._faults[ref] = fault

    def clear_faults(self) -> None:
        """Remove every installed sensor fault."""
        self._faults.clear()

    @property
    def faulted_refs(self) -> List[BlockRef]:
        """Sensors that currently have a fault installed."""
        return list(self._faults)

    def true_values(self, field: TemperatureField) -> Dict[BlockRef, float]:
        """Ground-truth block temperatures: no noise, no faults [K].

        Fault campaigns report physical hot-spot statistics from this
        while the policy under test only sees :meth:`read`.
        """
        return self._reduction.reduce_dict(field.values, reduce="max")

    def read(
        self, field: TemperatureField, time: float = 0.0
    ) -> Dict[BlockRef, float]:
        """Sample all sensors from a temperature field [K].

        ``time`` drives time-scheduled fault models; fault-free callers
        can ignore it.
        """
        readings = self._reduction.reduce_dict(field.values, reduce="max")
        if self.noise_sigma > 0.0:
            for ref in readings:
                readings[ref] += float(self._rng.normal(0.0, self.noise_sigma))
        if self.quantisation > 0.0:
            lsb = self.quantisation
            readings = {
                ref: round(value / lsb) * lsb for ref, value in readings.items()
            }
        for ref, fault in self._faults.items():
            readings[ref] = float(fault(time, readings[ref]))
        return readings

    def read_max(
        self, field: TemperatureField, time: float = 0.0
    ) -> Tuple[BlockRef, float]:
        """The hottest *healthy* sensor and its reading [K].

        Non-finite (dead-sensor) readings are skipped; with every
        sensor dead the first sensor is reported with its NaN reading
        so the caller sees the loss rather than a crash.
        """
        readings = self.read(field, time)
        finite = {
            ref: value
            for ref, value in readings.items()
            if np.isfinite(value)
        }
        if not finite:
            ref = self.refs[0]
            return ref, readings[ref]
        ref = max(finite, key=finite.get)
        return ref, finite[ref]
