"""On-die temperature sensors.

Section IV-A: "each core has a temperature sensor, which is able to
provide temperature readings at regular intervals (e.g., every 100 ms)".
The sensor layer turns a full temperature field into the per-core
readings the run-time policies consume, optionally with Gaussian noise
and quantisation to emulate real thermal diodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .field import BlockReduction, TemperatureField
from .model import BlockRef, CompactThermalModel


class TemperatureSensors:
    """Per-block temperature sensors over a thermal model.

    Parameters
    ----------
    model:
        The thermal model being observed.
    refs:
        Blocks to instrument; defaults to every core block.
    noise_sigma:
        Standard deviation of additive Gaussian read noise [K].
    quantisation:
        Sensor LSB [K]; zero disables quantisation.
    seed:
        RNG seed for reproducible noise.
    """

    def __init__(
        self,
        model: CompactThermalModel,
        refs: Optional[List[BlockRef]] = None,
        noise_sigma: float = 0.0,
        quantisation: float = 0.0,
        seed: int = 0,
    ) -> None:
        if noise_sigma < 0.0 or quantisation < 0.0:
            raise ValueError("noise and quantisation must be non-negative")
        self.model = model
        if refs is None:
            refs = [
                (layer.name, block.name)
                for layer, block in model.stack.iter_blocks()
                if block.kind == "core"
            ]
        if not refs:
            raise ValueError("no sensor locations given")
        self.refs = list(refs)
        all_masks = model.block_masks()
        self._masks = {ref: all_masks[ref] for ref in self.refs}
        self._reduction = BlockReduction(model.grid, self._masks)
        self.noise_sigma = noise_sigma
        self.quantisation = quantisation
        self._rng = np.random.default_rng(seed)

    def read(self, field: TemperatureField) -> Dict[BlockRef, float]:
        """Sample all sensors from a temperature field [K]."""
        readings = self._reduction.reduce_dict(field.values, reduce="max")
        if self.noise_sigma > 0.0:
            for ref in readings:
                readings[ref] += float(self._rng.normal(0.0, self.noise_sigma))
        if self.quantisation > 0.0:
            lsb = self.quantisation
            readings = {
                ref: round(value / lsb) * lsb for ref, value in readings.items()
            }
        return readings

    def read_max(self, field: TemperatureField) -> Tuple[BlockRef, float]:
        """The hottest sensor and its reading [K]."""
        readings = self.read(field)
        ref = max(readings, key=readings.get)
        return ref, readings[ref]
