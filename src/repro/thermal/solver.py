"""Transient integration of the compact thermal model.

Backward Euler with sparse LU factors:

``(C/dt + A(f)) T_{n+1} = (C/dt) T_n + P + b(f)``

The factorisation depends only on ``(flow signature, dt)``.  The
run-time policies quantise the flow rate to a handful of settings, so an
LRU cache of LU factors makes every step after the first a pair of
triangular solves — this is what makes minutes-long closed-loop
simulations with 100 ms control periods cheap.  The boundary vector
``b(f)`` depends on the same signature and is cached alongside the
factor, so a cached step performs exactly one spmv (power injection),
one triangular solve pair, and one vector add.

Every step is guarded (see :class:`~repro.thermal.diagnostics.SolverGuard`):
non-finite solutions evict the offending LU factor — a retry therefore
refactorises instead of reusing a poisoned factor — and the step is
re-attempted as ``2^k`` backward-Euler substeps at ``dt / 2^k`` with
bounded ``k`` before :class:`TransientDivergenceError` is raised.  The
health record of the last step is kept in ``last_diagnostics``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import splu

from .diagnostics import (
    FactorizationError,
    IterativeConvergenceError,
    SolverDiagnostics,
    SolverGuard,
    SolverStats,
    TransientDivergenceError,
    condition_estimate_from_factor,
    relative_residual,
    validate_finite_array,
    validate_positive_scalar,
)
from ..obs.metrics import Counter, get_registry
from ..obs.trace import get_tracer
from .field import TemperatureField
from .krylov import (
    KrylovOptions,
    KrylovSolver,
    choose_backend,
    exact_fallback_backend,
)
from .model import (
    SPLU_OPTIONS,
    BlockRef,
    CacheInfo,
    CompactThermalModel,
    FlowSignature,
    lu_cache_size,
)
from .rom import RomRejection

FactorKey = Tuple[FlowSignature, float]
"""Cache key of one factorisation: ``(flow signature, dt)``."""

FactorEntry = Tuple[object, np.ndarray, object]
"""One cache entry: ``(LU factor, boundary rhs, system matrix)``."""

KrylovEntry = Tuple[KrylovSolver, np.ndarray]
"""One iterative-path cache entry: ``(preconditioned solver, boundary rhs)``."""

AttemptOutcome = Tuple[
    np.ndarray, bool, Optional[float], str, Optional[int], bool
]
"""One unguarded solve attempt:
``(solution, ok, residual, method, iterations, fell_back)``."""


class TransientStepper:
    """Advances a thermal model state with backward-Euler steps.

    Parameters
    ----------
    model:
        The assembled compact thermal model.
    dt:
        Time-step length [s]; typically the 100 ms sensor period.
    initial:
        Initial temperature field; the paper initialises simulations with
        steady-state values, so callers usually pass
        ``model.steady_state(...)``.
    max_cached_factors:
        Upper bound on retained LU factorisations (LRU eviction).
        Defaults to 16, overridable process-wide with the
        ``REPRO_LU_CACHE_SIZE`` environment variable (an explicit
        argument always wins).
    guard:
        Numerical-guard configuration; defaults to the model's.
    solver:
        Backend selection (``"auto"`` / ``"direct"`` / ``"iterative"``
        / ``"amg"`` / ``"rom"``); defaults to the model's.  The
        ``"amg"`` steady tier shares the iterative transient path (the
        ``C/dt`` shift already makes ILU-BiCGSTAB converge in a few
        iterations, so a per-``(flow, dt)`` hierarchy would be wasted
        setup).  The iterative path
        solves ``(C/dt + A(f))`` with ILU-preconditioned BiCGSTAB
        warm-started from the previous state — the dominant-diagonal
        ``C/dt`` makes these systems converge in a handful of
        iterations — and falls back to the guarded direct LU on
        non-convergence.  The ``"rom"`` path advances a certified
        reduced state (see :mod:`repro.thermal.rom`) and transparently
        falls back to the exact backend — re-synchronising the reduced
        state afterwards — whenever the error bound or trust region
        rejects a step.
    krylov:
        Iterative-path tuning; defaults to the model's.

    Notes
    -----
    The per-entry boundary vector is cached against the model's
    ``inlet_temperature``/``ambient`` at factorisation time; mutate
    those only through a fresh stepper (the closed-loop simulator never
    changes them mid-run).
    """

    def __init__(
        self,
        model: CompactThermalModel,
        dt: float,
        initial: TemperatureField,
        max_cached_factors: Optional[int] = None,
        guard: Optional[SolverGuard] = None,
        solver: Optional[str] = None,
        krylov: Optional[KrylovOptions] = None,
    ) -> None:
        dt = validate_positive_scalar(dt, "dt")
        if max_cached_factors is None:
            max_cached_factors = lu_cache_size(16)
        if max_cached_factors < 1:
            raise ValueError("cache must hold at least one factorisation")
        self.model = model
        self.dt = float(dt)
        self.guard = guard if guard is not None else model.guard
        self.state = initial.copy()
        self.time = initial.time
        self.last_diagnostics: Optional[SolverDiagnostics] = None
        self.stats = SolverStats()
        self._backend = choose_backend(
            solver if solver is not None else model.solver, model.grid.size
        )
        self.krylov_options = (
            krylov if krylov is not None else model.krylov_options
        )
        self._max_cached = max_cached_factors
        # Each entry holds (LU factor, boundary rhs, system matrix) for
        # one flow signature at one dt — the rhs costs as much to
        # rebuild per step as the triangular solves it accompanies, and
        # the matrix (already assembled for the factorisation) backs
        # the optional residual check.
        self._factors: "OrderedDict[FactorKey, FactorEntry]" = OrderedDict()
        # Iterative-path twin: one ILU-preconditioned operator plus its
        # boundary rhs per (flow signature, dt).
        self._krylov: "OrderedDict[FactorKey, KrylovEntry]" = OrderedDict()
        # Per-stepper cache counters mirrored into the global registry
        # (same pattern as the model's steady-factor cache).
        self._hits = Counter("transient_cache.hits")
        self._misses = Counter("transient_cache.misses")
        registry = get_registry()
        self._g_hits = registry.counter("thermal.transient_cache.hits")
        self._g_misses = registry.counter("thermal.transient_cache.misses")
        self._c_steps = registry.counter("thermal.transient_steps")
        # Capacity/occupancy gauges (process-global rollup: with several
        # live steppers the last writer wins, which is fine for the
        # single-simulator runs these exist to observe).
        registry.gauge("thermal.transient_cache.maxsize").set(
            float(self._max_cached)
        )
        self._g_currsize = registry.gauge("thermal.transient_cache.currsize")
        self._c_rom_steps = registry.counter("rom.transient_steps")
        self._c_over_dt = model.capacitance / self.dt
        # Reduced-order transient state (backend "rom"): created lazily
        # on the first rom step and invalidated whenever an exact
        # fallback step advances the full-order state without it.
        self._reduced = None
        self._exact_backend: Optional[str] = None

    def _c_over(self, dt: float) -> np.ndarray:
        if dt == self.dt:
            return self._c_over_dt
        return self.model.capacitance / dt

    def _factor(self, dt: Optional[float] = None) -> FactorEntry:
        dt = self.dt if dt is None else dt
        key: FactorKey = (self.model.flow_signature(), dt)
        entry = self._factors.get(key)
        if entry is not None:
            self._factors.move_to_end(key)
            self._hits.inc()
            self._g_hits.inc()
            return entry
        self._misses.inc()
        self._g_misses.inc()
        matrix = self.model.system_matrix() + diags(self._c_over(dt))
        try:
            factor = splu(matrix.tocsc(), **SPLU_OPTIONS)
        except Exception as exc:
            raise FactorizationError(
                f"transient LU factorisation failed for key {key!r}: {exc}"
            ) from exc
        entry = (factor, self.model.boundary_rhs(), matrix)
        self._factors[key] = entry
        if len(self._factors) > self._max_cached:
            self._factors.popitem(last=False)
        self._g_currsize.set(float(len(self._factors)))
        return entry

    @property
    def backend(self) -> str:
        """The resolved backend (``"direct"``/``"iterative"``/``"rom"``)."""
        return self._backend

    def _exact(self) -> str:
        """The exact backend behind the rom tier (lazily resolved)."""
        if self._exact_backend is None:
            self._exact_backend = exact_fallback_backend(self.model.grid.size)
        return self._exact_backend

    def factor_entry(self, dt: Optional[float] = None) -> FactorEntry:
        """The cached ``(LU factor, boundary rhs, system matrix)`` entry.

        Public accessor of the direct-path cache for batched drivers
        (see :class:`repro.analysis.sweep.TransientSweep`): the factor
        solves ``(C/dt + A(f)) x = rhs`` for the model's *current* flow
        state, and SuperLU handles 2-D right-hand sides column by
        column, so many traces can share one factorisation per step.
        """
        return self._factor(dt)

    def _krylov_factor(self, dt: Optional[float] = None) -> KrylovEntry:
        """Cached ILU-preconditioned operator of ``C/dt + A(f)``."""
        dt = self.dt if dt is None else dt
        key: FactorKey = (self.model.flow_signature(), dt)
        entry = self._krylov.get(key)
        if entry is not None:
            self._krylov.move_to_end(key)
            self._hits.inc()
            self._g_hits.inc()
            return entry
        self._misses.inc()
        self._g_misses.inc()
        matrix = self.model.system_matrix() + diags(self._c_over(dt))
        solver = KrylovSolver(matrix, self.krylov_options)
        entry = (solver, self.model.boundary_rhs())
        self._krylov[key] = entry
        if len(self._krylov) > self._max_cached:
            self._krylov.popitem(last=False)
        return entry

    def _evict_krylov(self, dt: float) -> bool:
        key: FactorKey = (self.model.flow_signature(), dt)
        return self._krylov.pop(key, None) is not None

    def evict_factor(self, dt: Optional[float] = None) -> bool:
        """Drop the cached factor of the current flow state at ``dt``.

        Guarded steps call this when a factor yields non-finite or
        out-of-tolerance solutions, so the retry refactorises instead of
        reusing the poisoned factor.  Returns whether an entry existed
        (in either the direct or the iterative cache).
        """
        dt = self.dt if dt is None else dt
        key: FactorKey = (self.model.flow_signature(), dt)
        dropped_lu = self._factors.pop(key, None) is not None
        dropped_ilu = self._krylov.pop(key, None) is not None
        if dropped_lu:
            self._g_currsize.set(float(len(self._factors)))
        return dropped_lu or dropped_ilu

    @property
    def cached_factor_count(self) -> int:
        """Number of LU factorisations currently cached."""
        return len(self._factors)

    def cache_info(self) -> CacheInfo:
        """``lru_cache``-style statistics of the factor cache."""
        return CacheInfo(
            hits=self._hits.value,
            misses=self._misses.value,
            currsize=len(self._factors),
            maxsize=self._max_cached,
        )

    def step(self, block_powers: Dict[BlockRef, float]) -> TemperatureField:
        """Advance one time step under the given block powers.

        Returns the new state (also retained as ``self.state``).
        """
        return self.step_packed(self.model.pack_powers(block_powers))

    def step_packed(self, packed_powers: np.ndarray) -> TemperatureField:
        """Advance one step from a packed per-block power array.

        The fast path for callers that already hold powers in the
        model's canonical :meth:`CompactThermalModel.block_order`: the
        nodal vector is one spmv on the precomputed injection operator.
        On the ``"rom"`` backend the step stays entirely in the reduced
        space when the certified bound and trust region admit it;
        rejected steps fall back to the exact path below, which is
        byte-for-byte the non-rom code, so fallback states are bitwise
        identical to a plain exact stepper's.
        """
        if self._backend == "rom":
            state = self._rom_step(packed_powers)
            if state is not None:
                return state
        return self.step_with_power_vector(
            self.model.power_vector_packed(packed_powers)
        )

    def _rom_step(
        self, packed_powers: np.ndarray
    ) -> Optional[TemperatureField]:
        """One certified reduced step, or ``None`` to fall back.

        The reduced stepper is synchronised from the current full-order
        state on first use and after every exact fallback step; its
        certification raises *before* the reduced state is committed,
        so a rejected step leaves both representations untouched.
        """
        model = self.model
        operator = model.injection_operator()
        if packed_powers.shape != (operator.shape[1],):
            raise ValueError(
                f"packed powers have shape {packed_powers.shape}, "
                f"expected ({operator.shape[1]},)"
            )
        validate_finite_array(
            packed_powers, "packed block powers", non_negative=True
        )
        tracer = get_tracer()
        try:
            rom = model.ensure_rom()
            flow, rate = model.rom_flow(None)
            with tracer.span("rom.solve", kind="transient"):
                if model.cooling_rhs() is not None:
                    # Moving saturation anchors sit outside the basis'
                    # calibrated (static-anchor) snapshot space.
                    raise RomRejection(
                        "two-phase-anchor",
                        "dynamic two-phase anchors moved the boundary "
                        "source outside the calibrated ROM basis",
                    )
                if model._flows and flow is None:
                    rom.check_flow(None)  # raises RomRejection, counted
                reduced = self._reduced
                if reduced is None:
                    rom.check_flow(flow if model._flows else None)
                    reduced = rom.stepper(self.dt, self.state.values)
                bound = reduced.step_packed(
                    packed_powers,
                    flow,
                    capacity_rate=rate if model._flows else None,
                )
        except RomRejection as rejection:
            self._reduced = None
            model._c_rom_fallback.inc()
            tracer.event(
                "rom.fallback", kind="transient", reason=rejection.reason
            )
            return None
        self._reduced = reduced
        self.time += self.dt
        self.state = TemperatureField(model.grid, reduced.values(), self.time)
        self._c_steps.inc()
        self._c_rom_steps.inc()
        self.last_diagnostics = SolverDiagnostics(
            kind="transient",
            residual_norm=bound,
            finite=True,
            dt=self.dt,
            dt_effective=self.dt,
            method="rom",
        )
        return self.state

    def _attempt(
        self, values: np.ndarray, power: np.ndarray, dt: float
    ) -> AttemptOutcome:
        """One unguarded backward-Euler solve; reports solution health.

        On the iterative backend this tries the warm-started Krylov
        solve first and hands the step to the direct factorisation
        when it does not converge (``fell_back=True`` in the outcome);
        the guarded retry/backoff logic above never needs to know which
        backend produced the solution.
        """
        iterations: Optional[int] = None
        fell_back = False
        backend = self._backend
        # Dynamic two-phase anchors contribute a pure rhs delta: the
        # (C/dt + A) factor caches stay valid while the saturation
        # field moves, and legacy paths never take the branch.
        cooling = self.model.cooling_rhs()
        if backend == "rom":
            # A rejected rom step lands here; it runs on whatever exact
            # backend the "auto" size rule picks for this grid.
            backend = self._exact()
        if backend in ("iterative", "amg"):
            # The C/dt shift makes transient systems strongly
            # diagonally dominant: ILU-BiCGSTAB converges in a handful
            # of iterations, so an AMG hierarchy per (flow, dt) key
            # would cost more setup than it could save.  The amg
            # backend therefore shares the iterative transient tier.
            try:
                solver, boundary = self._krylov_factor(dt)
                rhs = self._c_over(dt) * values + power + boundary
                if cooling is not None:
                    rhs = rhs + cooling
                solution, iterations = solver.solve(rhs, x0=values)
            except (FactorizationError, IterativeConvergenceError):
                self._evict_krylov(dt)
                fell_back = True
            else:
                residual: Optional[float] = None
                ok = True
                if self.guard.residual_tolerance is not None:
                    residual = relative_residual(
                        solver.matrix, solution, rhs
                    )
                    if residual > self.guard.residual_tolerance:
                        ok = False
                if ok:
                    return (
                        solution, True, residual, "bicgstab", iterations,
                        False,
                    )
                self._evict_krylov(dt)
                fell_back = True
        factor, boundary, matrix = self._factor(dt)
        rhs = self._c_over(dt) * values + power + boundary
        if cooling is not None:
            rhs = rhs + cooling
        solution = factor.solve(rhs)
        residual = None
        ok = True
        if self.guard.check_finite and not np.all(np.isfinite(solution)):
            ok = False
        if ok and self.guard.residual_tolerance is not None:
            residual = relative_residual(matrix, solution, rhs)
            if residual > self.guard.residual_tolerance:
                ok = False
        return solution, ok, residual, "direct", iterations, fell_back

    def step_with_power_vector(self, power: np.ndarray) -> TemperatureField:
        """Advance one guarded time step with a pre-built power vector."""
        tracer = get_tracer()
        # Any exact step advances the full-order state past the reduced
        # one; drop it so the next rom step re-synchronises.
        self._reduced = None
        with tracer.span("thermal.transient_step") as span:
            state = self._guarded_step(power)
            self._c_steps.inc()
            if tracer.has_sinks:
                diagnostics = self.last_diagnostics
                if diagnostics is not None:
                    span.set(
                        method=diagnostics.method,
                        retries=diagnostics.retries,
                        t=self.time,
                    )
                    if diagnostics.fallback_to_direct:
                        tracer.event(
                            "krylov.fallback",
                            kind="transient",
                            iterations=diagnostics.iterations,
                        )
            return state

    def _guarded_step(self, power: np.ndarray) -> TemperatureField:
        """The guarded solve behind :meth:`step_with_power_vector`."""
        if self.guard.check_finite:
            validate_finite_array(power, "nodal power vector")
        values, ok, residual, method, iterations, fell_back = self._attempt(
            self.state.values, power, self.dt
        )
        iteration_total = iterations or 0
        saw_iterative = iterations is not None
        evictions = 0
        retries = 0
        dt_effective = self.dt
        if not ok:
            # The factor may be poisoned (e.g. cached before a failed
            # solve): evict and retry once with a fresh factorisation.
            if self.evict_factor(self.dt):
                evictions += 1
            values, ok, residual, method, iterations, sub_fell = (
                self._attempt(self.state.values, power, self.dt)
            )
            iteration_total += iterations or 0
            saw_iterative = saw_iterative or iterations is not None
            fell_back = fell_back or sub_fell
        if not ok:
            # Bounded dt-halving backoff: 2^k substeps at dt / 2^k.
            for halvings in range(1, self.guard.max_dt_halvings + 1):
                sub_dt = self.dt / (2.0 ** halvings)
                current = self.state.values
                diverged = False
                for _ in range(2 ** halvings):
                    current, sub_ok, residual, method, iterations, sub_fell = (
                        self._attempt(current, power, sub_dt)
                    )
                    iteration_total += iterations or 0
                    saw_iterative = saw_iterative or iterations is not None
                    fell_back = fell_back or sub_fell
                    if not sub_ok:
                        if self.evict_factor(sub_dt):
                            evictions += 1
                        diverged = True
                        break
                if not diverged:
                    values = current
                    ok = True
                    retries = halvings
                    dt_effective = sub_dt
                    break
        if not ok:
            factor, _, _ = self._factor(self.dt)
            diagnostics = SolverDiagnostics(
                kind="transient",
                residual_norm=residual,
                finite=bool(np.all(np.isfinite(values))),
                condition_estimate=condition_estimate_from_factor(factor),
                dt=self.dt,
                dt_effective=self.dt / (2.0 ** self.guard.max_dt_halvings),
                retries=self.guard.max_dt_halvings,
                factor_evictions=evictions,
                method=method,
                iterations=iteration_total if saw_iterative else None,
                fallback_to_direct=fell_back,
            )
            self.last_diagnostics = diagnostics
            raise TransientDivergenceError(
                f"transient step at t={self.time:.3f}s diverged and the "
                f"dt backoff was exhausted after "
                f"{self.guard.max_dt_halvings} halvings",
                diagnostics,
            )
        self.time += self.dt
        self.state = TemperatureField(self.model.grid, values, self.time)
        if method == "direct" and (
            retries or evictions or self.guard.residual_tolerance is not None
        ):
            # Only when a direct factor produced the solution: computing
            # the estimate on the iterative path would force exactly the
            # LU factorisation the backend exists to avoid.
            condition = condition_estimate_from_factor(
                self._factor(dt_effective)[0]
            )
        else:
            condition = None
        diagnostics = SolverDiagnostics(
            kind="transient",
            residual_norm=residual,
            finite=True,
            condition_estimate=condition,
            dt=self.dt,
            dt_effective=dt_effective,
            retries=retries,
            factor_evictions=evictions,
            method=method,
            iterations=iteration_total if saw_iterative else None,
            fallback_to_direct=fell_back,
        )
        self.last_diagnostics = diagnostics
        self.stats.record(diagnostics)
        return self.state

    def run(
        self,
        block_powers: Dict[BlockRef, float],
        duration: float,
    ) -> TemperatureField:
        """Advance multiple steps under constant power (convenience)."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        steps = int(round(duration / self.dt))
        if self._backend == "rom":
            packed = self.model.pack_powers(block_powers)
            for _ in range(steps):
                self.step_packed(packed)
            return self.state
        power = self.model.power_vector(block_powers)
        for _ in range(steps):
            self.step_with_power_vector(power)
        return self.state
