"""Transient integration of the compact thermal model.

Backward Euler with sparse LU factors:

``(C/dt + A(f)) T_{n+1} = (C/dt) T_n + P + b(f)``

The factorisation depends only on ``(flow signature, dt)``.  The
run-time policies quantise the flow rate to a handful of settings, so an
LRU cache of LU factors makes every step after the first a pair of
triangular solves — this is what makes minutes-long closed-loop
simulations with 100 ms control periods cheap.  The boundary vector
``b(f)`` depends on the same signature and is cached alongside the
factor, so a cached step performs exactly one spmv (power injection),
one triangular solve pair, and one vector add.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import splu

from .field import TemperatureField
from .model import (
    SPLU_OPTIONS,
    BlockRef,
    CacheInfo,
    CompactThermalModel,
    FlowSignature,
)

FactorKey = Tuple[FlowSignature, float]
"""Cache key of one factorisation: ``(flow signature, dt)``."""


class TransientStepper:
    """Advances a thermal model state with backward-Euler steps.

    Parameters
    ----------
    model:
        The assembled compact thermal model.
    dt:
        Time-step length [s]; typically the 100 ms sensor period.
    initial:
        Initial temperature field; the paper initialises simulations with
        steady-state values, so callers usually pass
        ``model.steady_state(...)``.
    max_cached_factors:
        Upper bound on retained LU factorisations (LRU eviction).

    Notes
    -----
    The per-entry boundary vector is cached against the model's
    ``inlet_temperature``/``ambient`` at factorisation time; mutate
    those only through a fresh stepper (the closed-loop simulator never
    changes them mid-run).
    """

    def __init__(
        self,
        model: CompactThermalModel,
        dt: float,
        initial: TemperatureField,
        max_cached_factors: int = 16,
    ) -> None:
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if max_cached_factors < 1:
            raise ValueError("cache must hold at least one factorisation")
        self.model = model
        self.dt = float(dt)
        self.state = initial.copy()
        self.time = initial.time
        self._max_cached = max_cached_factors
        # Each entry holds (LU factor, boundary rhs) for one flow
        # signature at this stepper's dt — the rhs costs as much to
        # rebuild per step as the triangular solves it accompanies.
        self._factors: "OrderedDict[FactorKey, Tuple[object, np.ndarray]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._c_over_dt = model.capacitance / self.dt

    def _factor(self) -> Tuple[object, np.ndarray]:
        key: FactorKey = (self.model.flow_signature(), self.dt)
        entry = self._factors.get(key)
        if entry is not None:
            self._factors.move_to_end(key)
            self._hits += 1
            return entry
        self._misses += 1
        matrix = self.model.system_matrix() + diags(self._c_over_dt)
        factor = splu(matrix.tocsc(), **SPLU_OPTIONS)
        entry = (factor, self.model.boundary_rhs())
        self._factors[key] = entry
        if len(self._factors) > self._max_cached:
            self._factors.popitem(last=False)
        return entry

    @property
    def cached_factor_count(self) -> int:
        """Number of LU factorisations currently cached."""
        return len(self._factors)

    def cache_info(self) -> CacheInfo:
        """``lru_cache``-style statistics of the factor cache."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            currsize=len(self._factors),
            maxsize=self._max_cached,
        )

    def step(self, block_powers: Dict[BlockRef, float]) -> TemperatureField:
        """Advance one time step under the given block powers.

        Returns the new state (also retained as ``self.state``).
        """
        power = self.model.power_vector(block_powers)
        return self.step_with_power_vector(power)

    def step_packed(self, packed_powers: np.ndarray) -> TemperatureField:
        """Advance one step from a packed per-block power array.

        The fast path for callers that already hold powers in the
        model's canonical :meth:`CompactThermalModel.block_order`: the
        nodal vector is one spmv on the precomputed injection operator.
        """
        return self.step_with_power_vector(
            self.model.power_vector_packed(packed_powers)
        )

    def step_with_power_vector(self, power: np.ndarray) -> TemperatureField:
        """Advance one time step with a pre-built nodal power vector."""
        factor, boundary = self._factor()
        rhs = self._c_over_dt * self.state.values + power + boundary
        values = factor.solve(rhs)
        self.time += self.dt
        self.state = TemperatureField(self.model.grid, values, self.time)
        return self.state

    def run(
        self,
        block_powers: Dict[BlockRef, float],
        duration: float,
    ) -> TemperatureField:
        """Advance multiple steps under constant power (convenience)."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        steps = int(round(duration / self.dt))
        power = self.model.power_vector(block_powers)
        for _ in range(steps):
            self.step_with_power_vector(power)
        return self.state
