"""Transient integration of the compact thermal model.

Backward Euler with sparse LU factors:

``(C/dt + A(f)) T_{n+1} = (C/dt) T_n + P + b(f)``

The factorisation depends only on ``(flow rate, dt)``.  The run-time
policies quantise the flow rate to a handful of settings, so an LRU cache
of LU factors makes every step after the first a pair of triangular
solves — this is what makes minutes-long closed-loop simulations with
100 ms control periods cheap.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import splu

from .field import TemperatureField
from .model import BlockRef, CompactThermalModel


class TransientStepper:
    """Advances a thermal model state with backward-Euler steps.

    Parameters
    ----------
    model:
        The assembled compact thermal model.
    dt:
        Time-step length [s]; typically the 100 ms sensor period.
    initial:
        Initial temperature field; the paper initialises simulations with
        steady-state values, so callers usually pass
        ``model.steady_state(...)``.
    max_cached_factors:
        Upper bound on retained LU factorisations (LRU eviction).
    """

    def __init__(
        self,
        model: CompactThermalModel,
        dt: float,
        initial: TemperatureField,
        max_cached_factors: int = 16,
    ) -> None:
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if max_cached_factors < 1:
            raise ValueError("cache must hold at least one factorisation")
        self.model = model
        self.dt = float(dt)
        self.state = initial.copy()
        self.time = initial.time
        self._max_cached = max_cached_factors
        self._factors: "OrderedDict[Tuple[float, float], object]" = OrderedDict()
        self._c_over_dt = model.capacitance / self.dt

    def _factor(self):
        key = (self.model.flow_signature(), self.dt)
        if key in self._factors:
            self._factors.move_to_end(key)
            return self._factors[key]
        matrix = self.model.system_matrix() + diags(self._c_over_dt)
        factor = splu(matrix.tocsc())
        self._factors[key] = factor
        if len(self._factors) > self._max_cached:
            self._factors.popitem(last=False)
        return factor

    @property
    def cached_factor_count(self) -> int:
        """Number of LU factorisations currently cached."""
        return len(self._factors)

    def step(self, block_powers: Dict[BlockRef, float]) -> TemperatureField:
        """Advance one time step under the given block powers.

        Returns the new state (also retained as ``self.state``).
        """
        power = self.model.power_vector(block_powers)
        return self.step_with_power_vector(power)

    def step_with_power_vector(self, power: np.ndarray) -> TemperatureField:
        """Advance one time step with a pre-built nodal power vector."""
        factor = self._factor()
        rhs = self._c_over_dt * self.state.values + power + self.model.boundary_rhs()
        values = factor.solve(rhs)
        self.time += self.dt
        self.state = TemperatureField(self.model.grid, values, self.time)
        return self.state

    def run(
        self,
        block_powers: Dict[BlockRef, float],
        duration: float,
    ) -> TemperatureField:
        """Advance multiple steps under constant power (convenience)."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        steps = int(round(duration / self.dt))
        power = self.model.power_vector(block_powers)
        for _ in range(steps):
            self.step_with_power_vector(power)
        return self.state
