"""Transient integration of the compact thermal model.

Backward Euler with sparse LU factors:

``(C/dt + A(f)) T_{n+1} = (C/dt) T_n + P + b(f)``

The factorisation depends only on ``(flow signature, dt)``.  The
run-time policies quantise the flow rate to a handful of settings, so an
LRU cache of LU factors makes every step after the first a pair of
triangular solves — this is what makes minutes-long closed-loop
simulations with 100 ms control periods cheap.  The boundary vector
``b(f)`` depends on the same signature and is cached alongside the
factor, so a cached step performs exactly one spmv (power injection),
one triangular solve pair, and one vector add.

Every step is guarded (see :class:`~repro.thermal.diagnostics.SolverGuard`):
non-finite solutions evict the offending LU factor — a retry therefore
refactorises instead of reusing a poisoned factor — and the step is
re-attempted as ``2^k`` backward-Euler substeps at ``dt / 2^k`` with
bounded ``k`` before :class:`TransientDivergenceError` is raised.  The
health record of the last step is kept in ``last_diagnostics``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import splu

from .diagnostics import (
    FactorizationError,
    IterativeConvergenceError,
    SolverDiagnostics,
    SolverGuard,
    SolverStats,
    TransientDivergenceError,
    condition_estimate_from_factor,
    relative_residual,
    validate_finite_array,
    validate_positive_scalar,
)
from ..obs.metrics import Counter, get_registry
from ..obs.trace import get_tracer
from .field import TemperatureField
from .krylov import KrylovOptions, KrylovSolver, choose_backend
from .model import (
    SPLU_OPTIONS,
    BlockRef,
    CacheInfo,
    CompactThermalModel,
    FlowSignature,
)

FactorKey = Tuple[FlowSignature, float]
"""Cache key of one factorisation: ``(flow signature, dt)``."""

FactorEntry = Tuple[object, np.ndarray, object]
"""One cache entry: ``(LU factor, boundary rhs, system matrix)``."""

KrylovEntry = Tuple[KrylovSolver, np.ndarray]
"""One iterative-path cache entry: ``(preconditioned solver, boundary rhs)``."""

AttemptOutcome = Tuple[
    np.ndarray, bool, Optional[float], str, Optional[int], bool
]
"""One unguarded solve attempt:
``(solution, ok, residual, method, iterations, fell_back)``."""


class TransientStepper:
    """Advances a thermal model state with backward-Euler steps.

    Parameters
    ----------
    model:
        The assembled compact thermal model.
    dt:
        Time-step length [s]; typically the 100 ms sensor period.
    initial:
        Initial temperature field; the paper initialises simulations with
        steady-state values, so callers usually pass
        ``model.steady_state(...)``.
    max_cached_factors:
        Upper bound on retained LU factorisations (LRU eviction).
    guard:
        Numerical-guard configuration; defaults to the model's.
    solver:
        Backend selection (``"auto"`` / ``"direct"`` / ``"iterative"``);
        defaults to the model's.  The iterative path solves
        ``(C/dt + A(f))`` with ILU-preconditioned BiCGSTAB warm-started
        from the previous state — the dominant-diagonal ``C/dt`` makes
        these systems converge in a handful of iterations — and falls
        back to the guarded direct LU on non-convergence.
    krylov:
        Iterative-path tuning; defaults to the model's.

    Notes
    -----
    The per-entry boundary vector is cached against the model's
    ``inlet_temperature``/``ambient`` at factorisation time; mutate
    those only through a fresh stepper (the closed-loop simulator never
    changes them mid-run).
    """

    def __init__(
        self,
        model: CompactThermalModel,
        dt: float,
        initial: TemperatureField,
        max_cached_factors: int = 16,
        guard: Optional[SolverGuard] = None,
        solver: Optional[str] = None,
        krylov: Optional[KrylovOptions] = None,
    ) -> None:
        dt = validate_positive_scalar(dt, "dt")
        if max_cached_factors < 1:
            raise ValueError("cache must hold at least one factorisation")
        self.model = model
        self.dt = float(dt)
        self.guard = guard if guard is not None else model.guard
        self.state = initial.copy()
        self.time = initial.time
        self.last_diagnostics: Optional[SolverDiagnostics] = None
        self.stats = SolverStats()
        self._backend = choose_backend(
            solver if solver is not None else model.solver, model.grid.size
        )
        self.krylov_options = (
            krylov if krylov is not None else model.krylov_options
        )
        self._max_cached = max_cached_factors
        # Each entry holds (LU factor, boundary rhs, system matrix) for
        # one flow signature at one dt — the rhs costs as much to
        # rebuild per step as the triangular solves it accompanies, and
        # the matrix (already assembled for the factorisation) backs
        # the optional residual check.
        self._factors: "OrderedDict[FactorKey, FactorEntry]" = OrderedDict()
        # Iterative-path twin: one ILU-preconditioned operator plus its
        # boundary rhs per (flow signature, dt).
        self._krylov: "OrderedDict[FactorKey, KrylovEntry]" = OrderedDict()
        # Per-stepper cache counters mirrored into the global registry
        # (same pattern as the model's steady-factor cache).
        self._hits = Counter("transient_cache.hits")
        self._misses = Counter("transient_cache.misses")
        registry = get_registry()
        self._g_hits = registry.counter("thermal.transient_cache.hits")
        self._g_misses = registry.counter("thermal.transient_cache.misses")
        self._c_steps = registry.counter("thermal.transient_steps")
        self._c_over_dt = model.capacitance / self.dt

    def _c_over(self, dt: float) -> np.ndarray:
        if dt == self.dt:
            return self._c_over_dt
        return self.model.capacitance / dt

    def _factor(self, dt: Optional[float] = None) -> FactorEntry:
        dt = self.dt if dt is None else dt
        key: FactorKey = (self.model.flow_signature(), dt)
        entry = self._factors.get(key)
        if entry is not None:
            self._factors.move_to_end(key)
            self._hits.inc()
            self._g_hits.inc()
            return entry
        self._misses.inc()
        self._g_misses.inc()
        matrix = self.model.system_matrix() + diags(self._c_over(dt))
        try:
            factor = splu(matrix.tocsc(), **SPLU_OPTIONS)
        except Exception as exc:
            raise FactorizationError(
                f"transient LU factorisation failed for key {key!r}: {exc}"
            ) from exc
        entry = (factor, self.model.boundary_rhs(), matrix)
        self._factors[key] = entry
        if len(self._factors) > self._max_cached:
            self._factors.popitem(last=False)
        return entry

    @property
    def backend(self) -> str:
        """The resolved solve backend (``"direct"`` or ``"iterative"``)."""
        return self._backend

    def factor_entry(self, dt: Optional[float] = None) -> FactorEntry:
        """The cached ``(LU factor, boundary rhs, system matrix)`` entry.

        Public accessor of the direct-path cache for batched drivers
        (see :class:`repro.analysis.sweep.TransientSweep`): the factor
        solves ``(C/dt + A(f)) x = rhs`` for the model's *current* flow
        state, and SuperLU handles 2-D right-hand sides column by
        column, so many traces can share one factorisation per step.
        """
        return self._factor(dt)

    def _krylov_factor(self, dt: Optional[float] = None) -> KrylovEntry:
        """Cached ILU-preconditioned operator of ``C/dt + A(f)``."""
        dt = self.dt if dt is None else dt
        key: FactorKey = (self.model.flow_signature(), dt)
        entry = self._krylov.get(key)
        if entry is not None:
            self._krylov.move_to_end(key)
            self._hits.inc()
            self._g_hits.inc()
            return entry
        self._misses.inc()
        self._g_misses.inc()
        matrix = self.model.system_matrix() + diags(self._c_over(dt))
        solver = KrylovSolver(matrix, self.krylov_options)
        entry = (solver, self.model.boundary_rhs())
        self._krylov[key] = entry
        if len(self._krylov) > self._max_cached:
            self._krylov.popitem(last=False)
        return entry

    def _evict_krylov(self, dt: float) -> bool:
        key: FactorKey = (self.model.flow_signature(), dt)
        return self._krylov.pop(key, None) is not None

    def evict_factor(self, dt: Optional[float] = None) -> bool:
        """Drop the cached factor of the current flow state at ``dt``.

        Guarded steps call this when a factor yields non-finite or
        out-of-tolerance solutions, so the retry refactorises instead of
        reusing the poisoned factor.  Returns whether an entry existed
        (in either the direct or the iterative cache).
        """
        dt = self.dt if dt is None else dt
        key: FactorKey = (self.model.flow_signature(), dt)
        dropped_lu = self._factors.pop(key, None) is not None
        dropped_ilu = self._krylov.pop(key, None) is not None
        return dropped_lu or dropped_ilu

    @property
    def cached_factor_count(self) -> int:
        """Number of LU factorisations currently cached."""
        return len(self._factors)

    def cache_info(self) -> CacheInfo:
        """``lru_cache``-style statistics of the factor cache."""
        return CacheInfo(
            hits=self._hits.value,
            misses=self._misses.value,
            currsize=len(self._factors),
            maxsize=self._max_cached,
        )

    def step(self, block_powers: Dict[BlockRef, float]) -> TemperatureField:
        """Advance one time step under the given block powers.

        Returns the new state (also retained as ``self.state``).
        """
        power = self.model.power_vector(block_powers)
        return self.step_with_power_vector(power)

    def step_packed(self, packed_powers: np.ndarray) -> TemperatureField:
        """Advance one step from a packed per-block power array.

        The fast path for callers that already hold powers in the
        model's canonical :meth:`CompactThermalModel.block_order`: the
        nodal vector is one spmv on the precomputed injection operator.
        """
        return self.step_with_power_vector(
            self.model.power_vector_packed(packed_powers)
        )

    def _attempt(
        self, values: np.ndarray, power: np.ndarray, dt: float
    ) -> AttemptOutcome:
        """One unguarded backward-Euler solve; reports solution health.

        On the iterative backend this tries the warm-started Krylov
        solve first and hands the step to the direct factorisation
        when it does not converge (``fell_back=True`` in the outcome);
        the guarded retry/backoff logic above never needs to know which
        backend produced the solution.
        """
        iterations: Optional[int] = None
        fell_back = False
        if self._backend == "iterative":
            try:
                solver, boundary = self._krylov_factor(dt)
                rhs = self._c_over(dt) * values + power + boundary
                solution, iterations = solver.solve(rhs, x0=values)
            except (FactorizationError, IterativeConvergenceError):
                self._evict_krylov(dt)
                fell_back = True
            else:
                residual: Optional[float] = None
                ok = True
                if self.guard.residual_tolerance is not None:
                    residual = relative_residual(
                        solver.matrix, solution, rhs
                    )
                    if residual > self.guard.residual_tolerance:
                        ok = False
                if ok:
                    return (
                        solution, True, residual, "bicgstab", iterations,
                        False,
                    )
                self._evict_krylov(dt)
                fell_back = True
        factor, boundary, matrix = self._factor(dt)
        rhs = self._c_over(dt) * values + power + boundary
        solution = factor.solve(rhs)
        residual = None
        ok = True
        if self.guard.check_finite and not np.all(np.isfinite(solution)):
            ok = False
        if ok and self.guard.residual_tolerance is not None:
            residual = relative_residual(matrix, solution, rhs)
            if residual > self.guard.residual_tolerance:
                ok = False
        return solution, ok, residual, "direct", iterations, fell_back

    def step_with_power_vector(self, power: np.ndarray) -> TemperatureField:
        """Advance one guarded time step with a pre-built power vector."""
        tracer = get_tracer()
        with tracer.span("thermal.transient_step") as span:
            state = self._guarded_step(power)
            self._c_steps.inc()
            if tracer.has_sinks:
                diagnostics = self.last_diagnostics
                if diagnostics is not None:
                    span.set(
                        method=diagnostics.method,
                        retries=diagnostics.retries,
                        t=self.time,
                    )
                    if diagnostics.fallback_to_direct:
                        tracer.event(
                            "krylov.fallback",
                            kind="transient",
                            iterations=diagnostics.iterations,
                        )
            return state

    def _guarded_step(self, power: np.ndarray) -> TemperatureField:
        """The guarded solve behind :meth:`step_with_power_vector`."""
        if self.guard.check_finite:
            validate_finite_array(power, "nodal power vector")
        values, ok, residual, method, iterations, fell_back = self._attempt(
            self.state.values, power, self.dt
        )
        iteration_total = iterations or 0
        saw_iterative = iterations is not None
        evictions = 0
        retries = 0
        dt_effective = self.dt
        if not ok:
            # The factor may be poisoned (e.g. cached before a failed
            # solve): evict and retry once with a fresh factorisation.
            if self.evict_factor(self.dt):
                evictions += 1
            values, ok, residual, method, iterations, sub_fell = (
                self._attempt(self.state.values, power, self.dt)
            )
            iteration_total += iterations or 0
            saw_iterative = saw_iterative or iterations is not None
            fell_back = fell_back or sub_fell
        if not ok:
            # Bounded dt-halving backoff: 2^k substeps at dt / 2^k.
            for halvings in range(1, self.guard.max_dt_halvings + 1):
                sub_dt = self.dt / (2.0 ** halvings)
                current = self.state.values
                diverged = False
                for _ in range(2 ** halvings):
                    current, sub_ok, residual, method, iterations, sub_fell = (
                        self._attempt(current, power, sub_dt)
                    )
                    iteration_total += iterations or 0
                    saw_iterative = saw_iterative or iterations is not None
                    fell_back = fell_back or sub_fell
                    if not sub_ok:
                        if self.evict_factor(sub_dt):
                            evictions += 1
                        diverged = True
                        break
                if not diverged:
                    values = current
                    ok = True
                    retries = halvings
                    dt_effective = sub_dt
                    break
        if not ok:
            factor, _, _ = self._factor(self.dt)
            diagnostics = SolverDiagnostics(
                kind="transient",
                residual_norm=residual,
                finite=bool(np.all(np.isfinite(values))),
                condition_estimate=condition_estimate_from_factor(factor),
                dt=self.dt,
                dt_effective=self.dt / (2.0 ** self.guard.max_dt_halvings),
                retries=self.guard.max_dt_halvings,
                factor_evictions=evictions,
                method=method,
                iterations=iteration_total if saw_iterative else None,
                fallback_to_direct=fell_back,
            )
            self.last_diagnostics = diagnostics
            raise TransientDivergenceError(
                f"transient step at t={self.time:.3f}s diverged and the "
                f"dt backoff was exhausted after "
                f"{self.guard.max_dt_halvings} halvings",
                diagnostics,
            )
        self.time += self.dt
        self.state = TemperatureField(self.model.grid, values, self.time)
        if method == "direct" and (
            retries or evictions or self.guard.residual_tolerance is not None
        ):
            # Only when a direct factor produced the solution: computing
            # the estimate on the iterative path would force exactly the
            # LU factorisation the backend exists to avoid.
            condition = condition_estimate_from_factor(
                self._factor(dt_effective)[0]
            )
        else:
            condition = None
        diagnostics = SolverDiagnostics(
            kind="transient",
            residual_norm=residual,
            finite=True,
            condition_estimate=condition,
            dt=self.dt,
            dt_effective=dt_effective,
            retries=retries,
            factor_evictions=evictions,
            method=method,
            iterations=iteration_total if saw_iterative else None,
            fallback_to_direct=fell_back,
        )
        self.last_diagnostics = diagnostics
        self.stats.record(diagnostics)
        return self.state

    def run(
        self,
        block_powers: Dict[BlockRef, float],
        duration: float,
    ) -> TemperatureField:
        """Advance multiple steps under constant power (convenience)."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        steps = int(round(duration / self.dt))
        power = self.model.power_vector(block_powers)
        for _ in range(steps):
            self.step_with_power_vector(power)
        return self.state
