"""Two-phase (flow boiling) inter-tier cooling models (Section III/IV-B)."""

from .evaporator import MicroEvaporator, EvaporatorSolution, DryoutError
from .hotspot import HotSpotTestVehicle, FIG8_VEHICLE, SensorRowProfile

__all__ = [
    "MicroEvaporator",
    "EvaporatorSolution",
    "DryoutError",
    "HotSpotTestVehicle",
    "FIG8_VEHICLE",
    "SensorRowProfile",
]
