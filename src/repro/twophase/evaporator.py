"""One-dimensional marching model of a multi-microchannel evaporator.

Section III: flow boiling absorbs heat as latent heat while the local
saturation temperature *falls* along the channel (it follows the local
saturation pressure, which drops with the two-phase pressure gradient).
This model marches segment by segment down a representative channel:

1. the footprint heat flux adds latent heat → vapour quality rises;
2. the homogeneous two-phase pressure gradient lowers the pressure;
3. the local saturation temperature follows the refrigerant's curve;
4. the local heat transfer coefficient follows the flux-dominated
   flow-boiling model of :mod:`repro.heat_transfer.boiling`;
5. wall and die-base temperatures stack the convective film and the
   silicon conduction on top of the fluid temperature.

Dry-out (quality reaching 1 while heat keeps coming) raises
:class:`DryoutError`, mirroring Section III's caveat that all the
benefits hold "as long as dry-out ... is avoided".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, Union

import numpy as np

from ..heat_transfer.boiling import FlowBoilingModel
from ..hydraulics.twophase_dp import (
    accelerational_gradient,
    two_phase_pressure_gradient,
)
from ..materials.refrigerants import Refrigerant, R245FA
from ..materials.solids import SILICON

FluxProfile = Union[Callable[[float], float], Sequence[float]]


class DryoutError(RuntimeError):
    """The annular liquid film evaporated completely before the outlet."""


@dataclass
class EvaporatorSolution:
    """Axial profiles of a marching solution.

    All arrays are segment-centre values of length ``segments``.
    """

    z: np.ndarray
    heat_flux: np.ndarray
    pressure: np.ndarray
    saturation_k: np.ndarray
    quality: np.ndarray
    htc: np.ndarray
    wall_k: np.ndarray
    base_k: np.ndarray

    def row_means(self, rows: int) -> "EvaporatorSolution":
        """Averages over equal axial bands (the sensor rows of Fig. 8)."""
        if rows < 1 or len(self.z) % rows != 0:
            raise ValueError("segment count must be a multiple of the rows")
        per = len(self.z) // rows

        def fold(a: np.ndarray) -> np.ndarray:
            return a.reshape(rows, per).mean(axis=1)

        return EvaporatorSolution(
            z=fold(self.z),
            heat_flux=fold(self.heat_flux),
            pressure=fold(self.pressure),
            saturation_k=fold(self.saturation_k),
            quality=fold(self.quality),
            htc=fold(self.htc),
            wall_k=fold(self.wall_k),
            base_k=fold(self.base_k),
        )


@dataclass
class MicroEvaporator:
    """A silicon multi-microchannel evaporator.

    Attributes
    ----------
    refrigerant:
        Working fluid (the Fig. 8 experiments use R245fa [10]).
    channel_width, channel_height:
        Channel cross-section [m].
    pitch:
        Channel pitch (width + fin) [m]; one pitch of footprint feeds one
        channel.
    length:
        Channel length along the flow [m].
    channels:
        Number of parallel channels.
    base_thickness:
        Silicon between the heaters and the channel floor [m].
    boiling:
        Flow-boiling HTC model.
    """

    refrigerant: Refrigerant = R245FA
    channel_width: float = 85e-6
    channel_height: float = 560e-6
    pitch: float = 150e-6
    length: float = 10e-3
    channels: int = 135
    base_thickness: float = 280e-6
    boiling: FlowBoilingModel = field(default_factory=FlowBoilingModel)

    def __post_init__(self) -> None:
        for name in (
            "channel_width",
            "channel_height",
            "pitch",
            "length",
            "base_thickness",
        ):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        if self.channels < 1:
            raise ValueError("at least one channel required")
        if self.channel_width >= self.pitch:
            raise ValueError("channel width must be below the pitch")

    # -- geometry -------------------------------------------------------------

    @property
    def flow_area(self) -> float:
        """Flow area of one channel [m^2]."""
        return self.channel_width * self.channel_height

    @property
    def hydraulic_diameter(self) -> float:
        """Hydraulic diameter of one channel [m]."""
        return (
            2.0
            * self.channel_width
            * self.channel_height
            / (self.channel_width + self.channel_height)
        )

    @property
    def footprint_area(self) -> float:
        """Heated footprint of the whole evaporator [m^2]."""
        return self.pitch * self.channels * self.length

    def mass_flux(self, total_mass_flow: float) -> float:
        """Channel mass flux G for a total evaporator flow [kg/(m^2 s)]."""
        if total_mass_flow <= 0.0:
            raise ValueError("mass flow must be positive")
        return total_mass_flow / (self.channels * self.flow_area)

    # -- marching solution -----------------------------------------------------

    def _flux_at(self, profile: FluxProfile, z: float, segments: int) -> float:
        if callable(profile):
            return float(profile(z))
        values = np.asarray(profile, dtype=float)
        if values.shape != (segments,):
            raise ValueError("flux array must have one value per segment")
        index = min(segments - 1, int(z / self.length * segments))
        return float(values[index])

    def march(
        self,
        heat_flux: FluxProfile,
        total_mass_flow: float,
        inlet_saturation_k: float,
        inlet_quality: float = 0.03,
        segments: int = 100,
    ) -> EvaporatorSolution:
        """March the evaporator from inlet to outlet.

        Parameters
        ----------
        heat_flux:
            Footprint heat flux [W/m^2]: either a callable of the axial
            position ``z`` [m] or one value per segment.
        total_mass_flow:
            Refrigerant mass flow through all channels [kg/s].
        inlet_saturation_k:
            Saturation temperature at the inlet [K] (Fig. 8: 30 degC).
        inlet_quality:
            Vapour quality at the inlet [-].
        segments:
            Number of axial segments.

        Raises
        ------
        DryoutError
            If the vapour quality reaches 1 before the outlet.
        """
        if segments < 2:
            raise ValueError("need at least two segments")
        if not 0.0 <= inlet_quality < 1.0:
            raise ValueError("inlet quality must be in [0, 1)")
        g = self.mass_flux(total_mass_flow)
        mdot_channel = total_mass_flow / self.channels
        dz = self.length / segments
        dh = self.hydraulic_diameter

        pressure = self.refrigerant.saturation_pressure(inlet_saturation_k)
        quality = inlet_quality
        zs = (np.arange(segments) + 0.5) * dz
        out = {
            key: np.empty(segments)
            for key in (
                "heat_flux",
                "pressure",
                "saturation_k",
                "quality",
                "htc",
                "wall_k",
                "base_k",
            )
        }

        for i, z in enumerate(zs):
            t_sat = self.refrigerant.saturation_temperature(pressure)
            flux = self._flux_at(heat_flux, z, segments)
            if flux < 0.0:
                raise ValueError("heat flux must be non-negative")
            heat = flux * self.pitch * dz  # power into this channel segment
            h_fg = self.refrigerant.latent_heat(t_sat)
            dx = heat / (mdot_channel * h_fg)
            quality_new = quality + dx
            if quality_new >= 1.0:
                raise DryoutError(
                    f"dry-out at z = {z * 1e3:.2f} mm (quality {quality_new:.2f})"
                )
            friction = two_phase_pressure_gradient(
                self.refrigerant, t_sat, quality, g, dh
            )
            accel = accelerational_gradient(
                self.refrigerant, t_sat, quality, dx / dz, g
            )
            pressure -= (friction + accel) * dz
            if pressure <= 0.0:
                raise ValueError("pressure fell below zero; reduce the load")

            htc = self.boiling.htc(
                self.refrigerant, t_sat, max(flux, 1e-3), quality, dh
            )
            wall = t_sat + flux / htc
            base = wall + flux * self.base_thickness / SILICON.conductivity
            out["heat_flux"][i] = flux
            out["pressure"][i] = pressure
            out["saturation_k"][i] = t_sat
            out["quality"][i] = quality
            out["htc"][i] = htc
            out["wall_k"][i] = wall
            out["base_k"][i] = base
            quality = quality_new

        return EvaporatorSolution(z=zs, **out)

    def flow_for_outlet_saturation(
        self,
        heat_flux: FluxProfile,
        inlet_saturation_k: float,
        outlet_saturation_k: float,
        inlet_quality: float = 0.03,
        segments: int = 100,
        bounds: tuple = (1e-5, 5e-2),
    ) -> float:
        """Mass flow that yields a target outlet saturation temperature.

        Bisection on the marching model; used to pin the Fig. 8 operating
        point (30 degC in, 29.5 degC out).
        """
        if outlet_saturation_k >= inlet_saturation_k:
            raise ValueError("outlet saturation must sit below the inlet")

        def outlet(mass_flow: float) -> float:
            solution = self.march(
                heat_flux, mass_flow, inlet_saturation_k, inlet_quality, segments
            )
            return float(solution.saturation_k[-1])

        lo, hi = bounds
        # Higher flow -> lower quality but higher G -> more pressure drop;
        # in the laminar regime dp rises with flow, so outlet Tsat falls
        # monotonically as flow rises.
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            try:
                t_out = outlet(mid)
            except DryoutError:
                lo = mid
                continue
            if t_out > outlet_saturation_k:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
