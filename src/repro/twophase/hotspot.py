"""The Fig. 8 hot-spot test vehicle.

Section IV-B: "a 3D chip having 35 local heaters and 35 local temperature
sensors on one face [10], cooled by a two-phase refrigerant evaporating
in 135 parallel micro-channels of 85 um width engraved in the opposite
face.  The 35 local heaters are organized in a 5 x 7 layout, where the
first two and last two rows have a low heat flux (2 W/cm^2) while the
third row has a 15 times higher heat flux (30.2 W/cm^2)."

The vehicle wraps :class:`~repro.twophase.evaporator.MicroEvaporator`
with that heater layout and produces exactly the per-sensor-row series
plotted in Fig. 8: heat flux, heat transfer coefficient, and fluid /
wall / base temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .. import constants
from ..units import celsius_to_kelvin
from .evaporator import EvaporatorSolution, MicroEvaporator


@dataclass
class SensorRowProfile:
    """The Fig. 8 series, one value per sensor row.

    Attributes
    ----------
    rows:
        Sensor row numbers (1-based, inlet to outlet).
    heat_flux:
        Applied footprint heat flux [W/m^2].
    htc:
        Local heat transfer coefficient [W/(m^2 K)].
    fluid_c, wall_c, base_c:
        Fluid (saturation), channel-wall and die-base temperatures
        [degC].
    """

    rows: np.ndarray
    heat_flux: np.ndarray
    htc: np.ndarray
    fluid_c: np.ndarray
    wall_c: np.ndarray
    base_c: np.ndarray

    def hotspot_to_background_htc_ratio(self) -> float:
        """HTC under the hot-spot row over the background mean [-]."""
        hot = float(self.htc[2])
        background = float(np.mean(np.delete(self.htc, 2)))
        return hot / background

    def superheat_ratio(self) -> float:
        """Wall superheat under the hot spot over the background mean [-]."""
        superheat = self.wall_c - self.fluid_c
        hot = float(superheat[2])
        background = float(np.mean(np.delete(superheat, 2)))
        return hot / background


@dataclass
class HotSpotTestVehicle:
    """The 5 x 7 heater / 135-channel two-phase test chip.

    Attributes
    ----------
    evaporator:
        The underlying multi-microchannel evaporator.
    background_flux:
        Heat flux of the low-power heater rows [W/m^2].
    hotspot_flux:
        Heat flux of the third row [W/m^2].
    inlet_saturation_k:
        Refrigerant saturation temperature at the inlet [K].
    outlet_saturation_k:
        Target outlet saturation temperature [K]; the operating mass flow
        is calibrated to hit it (Fig. 8: 30.0 -> 29.5 degC).
    """

    evaporator: MicroEvaporator = field(default_factory=MicroEvaporator)
    background_flux: float = constants.EVAPORATOR_BACKGROUND_FLUX
    hotspot_flux: float = constants.EVAPORATOR_HOTSPOT_FLUX
    inlet_saturation_k: float = celsius_to_kelvin(constants.EVAPORATOR_INLET_SAT_C)
    outlet_saturation_k: float = celsius_to_kelvin(constants.EVAPORATOR_OUTLET_SAT_C)
    rows: int = constants.EVAPORATOR_HEATER_ROWS

    def __post_init__(self) -> None:
        if self.rows < 3:
            raise ValueError("the layout needs at least three heater rows")
        if self.hotspot_flux <= self.background_flux:
            raise ValueError("the hot spot must exceed the background flux")

    def flux_profile(self, segments: int) -> np.ndarray:
        """Per-segment footprint heat flux of the 5-row layout [W/m^2]."""
        if segments % self.rows != 0:
            raise ValueError("segments must be a multiple of the heater rows")
        per = segments // self.rows
        profile = np.full(segments, self.background_flux)
        profile[2 * per : 3 * per] = self.hotspot_flux
        return profile

    def operating_mass_flow(self, segments: int = 100) -> float:
        """Mass flow calibrated to the Fig. 8 outlet saturation [kg/s]."""
        return self.evaporator.flow_for_outlet_saturation(
            self.flux_profile(segments),
            self.inlet_saturation_k,
            self.outlet_saturation_k,
            segments=segments,
        )

    def solve(self, segments: int = 100) -> EvaporatorSolution:
        """Full axial solution at the calibrated operating point."""
        mass_flow = self.operating_mass_flow(segments)
        return self.evaporator.march(
            self.flux_profile(segments),
            mass_flow,
            self.inlet_saturation_k,
            segments=segments,
        )

    def sensor_rows(self, segments: int = 100) -> SensorRowProfile:
        """The Fig. 8 series: one value per sensor row."""
        solution = self.solve(segments).row_means(self.rows)
        zero_c = celsius_to_kelvin(0.0)
        return SensorRowProfile(
            rows=np.arange(1, self.rows + 1),
            heat_flux=solution.heat_flux,
            htc=solution.htc,
            fluid_c=solution.saturation_k - zero_c,
            wall_c=solution.wall_k - zero_c,
            base_c=solution.base_k - zero_c,
        )

    def comparison_with_paper(self, segments: int = 100) -> Dict[str, float]:
        """Headline Fig. 8 quantities vs. the paper's reported values."""
        profile = self.sensor_rows(segments)
        return {
            "htc_ratio": profile.hotspot_to_background_htc_ratio(),
            "superheat_ratio": profile.superheat_ratio(),
            "inlet_fluid_c": float(profile.fluid_c[0]),
            "outlet_fluid_c": float(profile.fluid_c[-1]),
        }


FIG8_VEHICLE = HotSpotTestVehicle()
"""The test vehicle at the published Fig. 8 operating point."""
