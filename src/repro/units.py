"""Small unit-conversion helpers.

The library uses SI units internally (m, kg, s, K, W, Pa).  The paper
quotes several quantities in engineering units (ml/min, degC, W/cm^2);
these helpers convert at API boundaries so the core never mixes systems.
"""

from __future__ import annotations

from .constants import ZERO_CELSIUS_K


def celsius_to_kelvin(temperature_c: float) -> float:
    """Convert a temperature from degC to K."""
    return temperature_c + ZERO_CELSIUS_K


def kelvin_to_celsius(temperature_k: float) -> float:
    """Convert a temperature from K to degC."""
    return temperature_k - ZERO_CELSIUS_K


def ml_per_min_to_m3_per_s(flow_ml_min: float) -> float:
    """Convert a volumetric flow rate from ml/min to m^3/s."""
    return flow_ml_min * 1e-6 / 60.0


def m3_per_s_to_ml_per_min(flow_m3_s: float) -> float:
    """Convert a volumetric flow rate from m^3/s to ml/min."""
    return flow_m3_s * 60.0 / 1e-6


def w_per_cm2_to_w_per_m2(flux_w_cm2: float) -> float:
    """Convert a heat flux from W/cm^2 to W/m^2."""
    return flux_w_cm2 * 1e4


def w_per_m2_to_w_per_cm2(flux_w_m2: float) -> float:
    """Convert a heat flux from W/m^2 to W/cm^2."""
    return flux_w_m2 * 1e-4


def mm2_to_m2(area_mm2: float) -> float:
    """Convert an area from mm^2 to m^2."""
    return area_mm2 * 1e-6


def m2_to_mm2(area_m2: float) -> float:
    """Convert an area from m^2 to mm^2."""
    return area_m2 * 1e6


def um_to_m(length_um: float) -> float:
    """Convert a length from micrometres to metres."""
    return length_um * 1e-6


def mm_to_m(length_mm: float) -> float:
    """Convert a length from millimetres to metres."""
    return length_mm * 1e-3


def bar_to_pa(pressure_bar: float) -> float:
    """Convert a pressure from bar to Pa."""
    return pressure_bar * 1e5


def pa_to_bar(pressure_pa: float) -> float:
    """Convert a pressure from Pa to bar."""
    return pressure_pa * 1e-5
