"""Workload traces emulating the paper's UltraSPARC T1 benchmarks."""

from .traces import WorkloadTrace
from .generators import (
    web_server_trace,
    database_trace,
    multimedia_trace,
    max_utilisation_trace,
    idle_trace,
    paper_workload_suite,
)
from .io import load_trace_csv, save_trace_csv

__all__ = [
    "WorkloadTrace",
    "load_trace_csv",
    "save_trace_csv",
    "web_server_trace",
    "database_trace",
    "multimedia_trace",
    "max_utilisation_trace",
    "idle_trace",
    "paper_workload_suite",
]
