"""Synthetic workload-trace generators.

The paper uses "various real-life benchmarks including web server,
database management, and multimedia processing" recorded on an
UltraSPARC T1 (32 hardware threads: 8 cores x 4 threads).  The original
traces are not public, so these generators produce seeded, reproducible
traces with the statistics each class is known for (and which the
policies actually react to):

* **web server** — moderate mean load with bursty arrivals: an AR(1)
  baseline modulated by Poisson-arriving request bursts; high variance
  and thread imbalance.
* **database** — high, steadily correlated load (OLTP-style): large
  common component across threads, small noise.
* **multimedia** — periodic frame-processing load: deterministic period
  with per-frame jitter.
* **max utilisation** — the near-saturation benchmark used for the
  "maximum utilization" bars of Fig. 6.
* **idle** — background load, useful for energy floors and tests.

All generators take an explicit seed and return a
:class:`~repro.workload.traces.WorkloadTrace`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .traces import WorkloadTrace

THREADS_PER_CORE = 4
"""Hardware threads per UltraSPARC T1 core."""


def _clip(values: np.ndarray) -> np.ndarray:
    return np.clip(values, 0.0, 1.0)


def _ar1(
    rng: np.random.Generator,
    intervals: int,
    threads: int,
    mean: float,
    sigma: float,
    rho: float,
) -> np.ndarray:
    """A mean-reverting AR(1) process per thread."""
    noise = rng.normal(0.0, sigma, size=(intervals, threads))
    series = np.empty((intervals, threads))
    series[0] = mean + noise[0]
    for t in range(1, intervals):
        series[t] = mean + rho * (series[t - 1] - mean) + noise[t]
    return series


def web_server_trace(
    threads: int = 32, duration: int = 300, seed: int = 1
) -> WorkloadTrace:
    """Bursty web-server workload (mean utilisation ~0.35)."""
    rng = np.random.default_rng(seed)
    base = _ar1(rng, duration, threads, mean=0.30, sigma=0.06, rho=0.8)
    # Poisson-arriving bursts hit random subsets of threads for a few
    # seconds each (request spikes).
    bursts = np.zeros((duration, threads))
    t = 0
    while t < duration:
        t += int(rng.exponential(15.0)) + 1
        if t >= duration:
            break
        length = rng.integers(2, 8)
        hit = rng.random(threads) < 0.4
        bursts[t : t + length, hit] += rng.uniform(0.3, 0.6)
    return WorkloadTrace("web", _clip(base + bursts))


def database_trace(
    threads: int = 32, duration: int = 300, seed: int = 2
) -> WorkloadTrace:
    """Steady high-load OLTP workload (mean utilisation ~0.7)."""
    rng = np.random.default_rng(seed)
    common = _ar1(rng, duration, 1, mean=0.70, sigma=0.04, rho=0.9)
    per_thread = rng.normal(0.0, 0.05, size=(duration, threads))
    return WorkloadTrace("database", _clip(common + per_thread))


def multimedia_trace(
    threads: int = 32, duration: int = 300, seed: int = 3
) -> WorkloadTrace:
    """Periodic frame-processing workload (mean utilisation ~0.5)."""
    rng = np.random.default_rng(seed)
    t = np.arange(duration)[:, None]
    frame_period = 8.0
    phase = rng.uniform(0.0, frame_period, size=(1, threads))
    wave = 0.5 + 0.25 * np.sign(np.sin(2.0 * np.pi * (t + phase) / frame_period))
    jitter = rng.normal(0.0, 0.05, size=(duration, threads))
    return WorkloadTrace("multimedia", _clip(wave + jitter))


def max_utilisation_trace(
    threads: int = 32, duration: int = 300, seed: int = 4
) -> WorkloadTrace:
    """Near-saturation benchmark (mean utilisation ~0.92)."""
    rng = np.random.default_rng(seed)
    base = _ar1(rng, duration, threads, mean=0.93, sigma=0.03, rho=0.7)
    return WorkloadTrace("max-utilisation", _clip(base))


def idle_trace(threads: int = 32, duration: int = 300, seed: int = 5) -> WorkloadTrace:
    """Mostly idle background load (mean utilisation ~0.08)."""
    rng = np.random.default_rng(seed)
    base = _ar1(rng, duration, threads, mean=0.08, sigma=0.03, rho=0.6)
    return WorkloadTrace("idle", _clip(base))


def paper_workload_suite(
    threads: int = 32, duration: int = 300, seed: int = 0
) -> Dict[str, WorkloadTrace]:
    """The benchmark set of Section IV-A.

    Returns the three named application classes plus the near-saturation
    benchmark; Fig. 6/7 statistics average over the application classes
    ("average case across all workloads") and single out the
    "maximum utilization" benchmark.
    """
    return {
        "web": web_server_trace(threads, duration, seed + 1),
        "database": database_trace(threads, duration, seed + 2),
        "multimedia": multimedia_trace(threads, duration, seed + 3),
        "max-utilisation": max_utilisation_trace(threads, duration, seed + 4),
    }
