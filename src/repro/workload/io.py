"""Trace import/export.

The paper's experiments use traces "collected from real applications
running on an UltraSPARC T1".  Users with their own recordings (mpstat
dumps, perf logs) can bring them in through the simple CSV convention
here: one row per sampling interval, one column per hardware thread,
values in percent (0-100, as OS tools report) or fractions (0-1).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from ..constants import TRACE_PERIOD
from .traces import WorkloadTrace

PathLike = Union[str, Path]


def save_trace_csv(trace: WorkloadTrace, path: PathLike) -> None:
    """Write a trace as CSV (header ``thread0..threadN``, percent values)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"thread{i}" for i in range(trace.threads)])
        for row in trace.utilisation:
            writer.writerow([f"{100.0 * u:.3f}" for u in row])


def load_trace_csv(
    path: PathLike,
    name: str = "",
    period: float = TRACE_PERIOD,
) -> WorkloadTrace:
    """Read a per-thread utilisation trace from CSV.

    Accepts percent (0-100) or fractional (0-1) values: if no value
    exceeds 1.5 the file is taken to be fractional, otherwise percent.
    A header row of non-numeric labels is skipped automatically.

    Parameters
    ----------
    path:
        CSV file to read.
    name:
        Trace name; defaults to the file stem.
    period:
        Sampling period of the recording [s].
    """
    path = Path(path)
    rows = []
    with path.open(newline="") as handle:
        for record in csv.reader(handle):
            if not record:
                continue
            try:
                rows.append([float(cell) for cell in record])
            except ValueError:
                if rows:
                    raise ValueError(
                        f"{path}: non-numeric row after data started"
                    )
                continue  # header
    if not rows:
        raise ValueError(f"{path}: no data rows")
    data = np.asarray(rows, dtype=float)
    if np.any(data < 0.0):
        raise ValueError(f"{path}: negative utilisation values")
    if data.max() > 1.5:
        if data.max() > 100.0 + 1e-9:
            raise ValueError(f"{path}: utilisation above 100 %")
        data = data / 100.0
    return WorkloadTrace(
        name=name or path.stem, utilisation=data, period=period
    )
