"""Per-thread utilisation traces.

Section IV-A: "we use workload traces collected from real applications
running on an UltraSPARC T1.  We record the utilization percentage for
each hardware thread at every second for several minutes for each
benchmark."  The original traces are proprietary; :mod:`.generators`
synthesises traces with the same structure (per-hardware-thread
utilisation, 1 s sampling) and the workload-class statistics the paper
names (web server, database management, multimedia processing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import TRACE_PERIOD


@dataclass
class WorkloadTrace:
    """A per-thread utilisation trace.

    Attributes
    ----------
    name:
        Benchmark name, e.g. ``"web"``.
    utilisation:
        Array of shape ``(intervals, threads)`` with values in [0, 1]:
        the fraction of each 1 s interval each hardware thread wants to
        execute.
    period:
        Sampling period [s] (the paper records every second).
    """

    name: str
    utilisation: np.ndarray
    period: float = TRACE_PERIOD

    def __post_init__(self) -> None:
        self.utilisation = np.asarray(self.utilisation, dtype=float)
        if self.utilisation.ndim != 2:
            raise ValueError("utilisation must be 2-D (intervals x threads)")
        if self.utilisation.size == 0:
            raise ValueError("trace must not be empty")
        if np.any(self.utilisation < 0.0) or np.any(self.utilisation > 1.0):
            raise ValueError("utilisation values must lie in [0, 1]")
        if self.period <= 0.0:
            raise ValueError("period must be positive")

    # -- shape ---------------------------------------------------------------

    @property
    def intervals(self) -> int:
        """Number of sampling intervals."""
        return self.utilisation.shape[0]

    @property
    def threads(self) -> int:
        """Number of hardware threads."""
        return self.utilisation.shape[1]

    @property
    def duration(self) -> float:
        """Trace length [s]."""
        return self.intervals * self.period

    # -- statistics ------------------------------------------------------------

    @property
    def mean_utilisation(self) -> float:
        """Mean utilisation over all threads and intervals [-]."""
        return float(self.utilisation.mean())

    @property
    def peak_interval_utilisation(self) -> float:
        """Highest thread-mean utilisation of any interval [-]."""
        return float(self.utilisation.mean(axis=1).max())

    def interval(self, index: int) -> np.ndarray:
        """Per-thread utilisation of one interval."""
        return self.utilisation[index]

    def truncated(self, intervals: int) -> "WorkloadTrace":
        """A copy limited to the first ``intervals`` samples."""
        if not 0 < intervals <= self.intervals:
            raise ValueError("intervals out of range")
        return WorkloadTrace(
            name=self.name,
            utilisation=self.utilisation[:intervals].copy(),
            period=self.period,
        )

    def __repr__(self) -> str:
        return (
            f"WorkloadTrace({self.name!r}, {self.intervals} x {self.threads}, "
            f"mean={self.mean_utilisation:.2f})"
        )
