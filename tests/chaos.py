"""Chaos-testing helpers for the durable scenario-job service.

These utilities deliberately break things — kill workers mid-solve,
``kill -9`` the whole service, tear the WAL tail, SIGTERM a drain —
so the chaos suite (``tests/test_service_chaos.py``) can assert the
service's recovery invariants:

* **no job lost** — every accepted job is present after a restart;
* **no job run twice to completion** — the solve log records exactly
  one uncached solve per content hash, across any number of crashes;
* **the cache is never corrupted** — results read back after recovery
  are complete and loadable.

The service under test runs as a real subprocess (``python -m repro
serve``), because crash-safety claims about a process are only
meaningful when there *is* a process to kill.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.scenario import (
    PolicySpec,
    Scenario,
    SolverSpec,
    StackSpec,
    WorkloadSpec,
)
from repro.service import ServiceClient

#: Coarse-but-valid grid (the floorplan needs at least 12x10 cells).
NX, NY = 12, 10

#: Short closed-loop run: ~20 control steps, a fraction of a second.
DURATION = 2


def make_scenario(label: str = "chaos", workload: str = "database") -> Scenario:
    """A fast, valid scenario; distinct labels share one content hash."""
    policy = PolicySpec(name="LC_FUZZY")
    return Scenario(
        stack=StackSpec(tiers=2, cooling=policy.cooling),
        workload=WorkloadSpec(name=workload, duration=DURATION),
        policy=policy,
        solver=SolverSpec(nx=NX, ny=NY),
        label=label,
    )


def read_run_log(root: Path) -> List[dict]:
    """Decoded entries of the service's solve log (``runs.jsonl``)."""
    path = Path(root) / "runs.jsonl"
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        if line.strip():
            entries.append(json.loads(line))
    return entries


def count_solves(root: Path, content_hash: Optional[str] = None) -> int:
    """Uncached solves recorded in the run log (optionally per hash).

    This is the ground truth behind "exactly once": a worker appends
    one O_APPEND-atomic line per *completed* solve, so two uncached
    lines for one hash would mean a job ran twice to completion.
    """
    return sum(
        1
        for entry in read_run_log(root)
        if not entry.get("cached", False)
        and (content_hash is None or entry.get("content_hash") == content_hash)
    )


def truncate_wal_tail(root: Path, keep_fraction: float = 0.6) -> Path:
    """Tear the newest WAL segment mid-record, like a crash mid-write.

    Cuts the segment to ``keep_fraction`` of its size — almost always
    landing inside a record — and returns the mangled segment path.
    """
    wal_dir = Path(root) / "wal"
    segments = sorted(wal_dir.glob("wal-*.jsonl"))
    assert segments, f"no WAL segments under {wal_dir}"
    segment = segments[-1]
    size = segment.stat().st_size
    with open(segment, "r+b") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))
    return segment


def garble_wal_tail(root: Path, garbage: bytes = b'{"type": "subm') -> Path:
    """Append a torn, newline-less record to the newest WAL segment."""
    wal_dir = Path(root) / "wal"
    segments = sorted(wal_dir.glob("wal-*.jsonl"))
    assert segments, f"no WAL segments under {wal_dir}"
    segment = segments[-1]
    with open(segment, "ab") as handle:
        handle.write(garbage)
    return segment


class ServiceHarness:
    """Drive a ``repro serve`` subprocess and do unkind things to it.

    Parameters
    ----------
    root:
        Service state directory (survives restarts — that is the
        point).
    solve_delay_s:
        Injected pre-solve sleep in every worker (the chaos window for
        killing a worker "mid-solve"); 0 disables it.
    """

    def __init__(
        self,
        root: Path,
        *,
        workers: int = 1,
        retries: int = 2,
        backoff_s: float = 0.05,
        drain_timeout_s: float = 30.0,
        solve_delay_s: float = 0.0,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        self.workers = workers
        self.retries = retries
        self.backoff_s = backoff_s
        self.drain_timeout_s = drain_timeout_s
        self.solve_delay_s = solve_delay_s
        self.fsync = fsync
        self.process: Optional[subprocess.Popen] = None
        self.client = ServiceClient(self.root / "service.sock", timeout=30.0)

    # -- lifecycle ----------------------------------------------------------

    def start(self, ready_timeout: float = 30.0) -> "ServiceHarness":
        assert self.process is None or self.process.poll() is not None
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src), env.get("PYTHONPATH")) if p
        )
        if self.solve_delay_s > 0:
            env["REPRO_SERVICE_TEST_DELAY_S"] = str(self.solve_delay_s)
        else:
            env.pop("REPRO_SERVICE_TEST_DELAY_S", None)
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--root",
            str(self.root),
            "--workers",
            str(self.workers),
            "--retries",
            str(self.retries),
            "--backoff",
            str(self.backoff_s),
            "--drain-timeout",
            str(self.drain_timeout_s),
        ]
        if not self.fsync:
            command.append("--no-fsync")
        self.process = subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.client.wait_ready(ready_timeout)
        return self

    def kill9(self) -> None:
        """SIGKILL the service — no drain, no cleanup, no goodbye."""
        assert self.process is not None
        self.process.kill()
        self.process.wait(timeout=30)

    def sigterm(self, timeout: float = 60.0) -> int:
        """SIGTERM the service and return its (graceful) exit code."""
        assert self.process is not None
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=timeout)

    def stop(self) -> None:
        """Best-effort teardown for test cleanup."""
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=30)

    def output(self) -> str:
        assert self.process is not None and self.process.poll() is not None
        return self.process.stdout.read() if self.process.stdout else ""

    # -- chaos actions ------------------------------------------------------

    def submit(self, scenario: Scenario) -> Dict[str, object]:
        return self.client.submit(scenario.to_dict())

    def wait_running(
        self, job_id: str, timeout: float = 30.0
    ) -> Dict[str, object]:
        """Block until the job is RUNNING with a live worker pid."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.client.status(job_id)["job"]
            if job["state"] == "RUNNING" and job.get("worker_pid"):
                return job
            if job["state"] in ("DONE", "FAILED", "QUARANTINED"):
                raise AssertionError(
                    f"{job_id} finished ({job['state']}) before the kill "
                    "window; raise solve_delay_s"
                )
            time.sleep(0.02)
        raise TimeoutError(f"{job_id} never started running")

    def kill_worker(self, job_id: str) -> int:
        """SIGKILL the worker currently solving ``job_id``; returns pid."""
        job = self.wait_running(job_id)
        pid = int(job["worker_pid"])
        os.kill(pid, signal.SIGKILL)
        return pid

    def wait_done(
        self, job_id: str, timeout: float = 120.0
    ) -> Dict[str, object]:
        job = self.client.wait_for(job_id, timeout=timeout)
        assert job["state"] == "DONE", f"{job_id} ended {job['state']}: {job}"
        return job
