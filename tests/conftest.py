"""Shared fixtures: small stacks, models and traces that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import build_3d_mpsoc, CoolingMode
from repro.thermal import CompactThermalModel
from repro.workload.traces import WorkloadTrace


@pytest.fixture(scope="session")
def liquid_stack_2tier():
    """The paper's 2-tier liquid-cooled stack."""
    return build_3d_mpsoc(2, CoolingMode.LIQUID)


@pytest.fixture(scope="session")
def air_stack_2tier():
    """The paper's 2-tier air-cooled stack."""
    return build_3d_mpsoc(2, CoolingMode.AIR)


@pytest.fixture(scope="session")
def liquid_model_coarse(liquid_stack_2tier):
    """A coarse (fast) thermal model of the liquid stack."""
    return CompactThermalModel(liquid_stack_2tier, nx=12, ny=10)


@pytest.fixture(scope="session")
def air_model_coarse(air_stack_2tier):
    """A coarse (fast) thermal model of the air stack."""
    return CompactThermalModel(air_stack_2tier, nx=12, ny=10)


@pytest.fixture()
def uniform_core_powers(liquid_stack_2tier):
    """5 W on each core, 1.5 W per cache, nothing elsewhere."""
    powers = {}
    for layer, block in liquid_stack_2tier.iter_blocks():
        if block.kind == "core":
            powers[(layer.name, block.name)] = 5.0
        elif block.kind == "cache":
            powers[(layer.name, block.name)] = 1.5
    return powers


def make_constant_trace(
    level: float, threads: int = 32, intervals: int = 5
) -> WorkloadTrace:
    """A trace with every thread at a constant utilisation level."""
    return WorkloadTrace(
        name=f"constant-{level}",
        utilisation=np.full((intervals, threads), level),
    )


@pytest.fixture()
def short_trace():
    """A 5 s trace at 60 % utilisation for quick closed-loop tests."""
    return make_constant_trace(0.6)
