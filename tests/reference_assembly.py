"""Loop-built reference implementation of the thermal-model assembly.

The production assembly (:mod:`repro.thermal.model`) derives every edge
list with vectorised index arithmetic.  This module re-derives the same
physical system with explicit nested Python loops and independent index
computation (``node = level*nx*ny + y*nx + x``), then feeds each phase
to the shared :class:`repro.thermal.assembly.ConductanceBuilder` as one
batch.  Per the builder's determinism contract (same phases, same
order, one conductance per phase) the result must match the production
matrices *bit for bit* — any mismatch exposes an index- or
formula-level bug, not floating-point noise.

Kept outside the production package on purpose: it is O(cells) Python
and exists only to pin down the vectorised implementation.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List

import numpy as np
from scipy.sparse import csr_matrix

from repro.geometry.stack import Cavity, Layer, TwoPhaseCavity
from repro.heat_transfer.convection import cavity_effective_htc
from repro.thermal.assembly import ConductanceBuilder
from repro.thermal.model import TWO_PHASE_ANCHOR_W_PER_K, CompactThermalModel


def _half_resistance(element: Layer, area: float) -> float:
    return element.thickness / (2.0 * element.material.conductivity * area)


def reference_assemble(model: CompactThermalModel) -> SimpleNamespace:
    """Re-assemble ``model``'s system with explicit loops.

    Returns a namespace with ``a_base``, ``a_adv``, ``per_cavity_adv``,
    ``per_cavity_b``, ``b_base``, ``b_adv`` and ``capacitance`` —
    the same quantities the production ``_assemble`` stores.
    """
    grid = model.grid
    stack = model.stack
    elements = stack.elements
    nx, ny = grid.nx, grid.ny
    n = grid.size
    area = grid.cell_area
    dx, dy = grid.dx, grid.dy
    cells_per_level = nx * ny

    def node(level: int, y: int, x: int) -> int:
        return level * cells_per_level + y * nx + x

    base = ConductanceBuilder(n)
    b_base = np.zeros(n)
    b_adv = np.zeros(n)
    capacitance = np.zeros(n)

    # Phase 1: per-level capacitance fill (direct assignment).
    lateral_kx: List[float] = []
    lateral_ky: List[float] = []
    for level, element in enumerate(elements):
        if isinstance(element, Cavity):
            geom = element.geometry
            phi = geom.porosity
            k_w = element.wall_material.conductivity
            k_f = element.coolant.conductivity
            lateral_kx.append(phi * k_f + (1.0 - phi) * k_w)
            lateral_ky.append(1.0 / (phi / k_f + (1.0 - phi) / k_w))
            c_v = (
                phi * element.coolant.vol_heat_capacity
                + (1.0 - phi) * element.wall_material.vol_heat_capacity
            )
        else:
            lateral_kx.append(element.material.conductivity)
            lateral_ky.append(element.material.conductivity)
            c_v = element.material.vol_heat_capacity
        value = c_v * (area * element.thickness)
        for y in range(ny):
            for x in range(nx):
                capacitance[node(level, y, x)] = value

    # Phase 2: lateral conduction — per level all x-edges, then all
    # y-edges, each as one builder batch.
    for level, element in enumerate(elements):
        t = element.thickness
        gx = lateral_kx[level] * (dy * t) / dx
        gy = lateral_ky[level] * (dx * t) / dy
        x_i = [node(level, y, x) for y in range(ny) for x in range(nx - 1)]
        x_j = [node(level, y, x + 1) for y in range(ny) for x in range(nx - 1)]
        base.add_edges(x_i, x_j, gx)
        y_i = [node(level, y, x) for y in range(ny - 1) for x in range(nx)]
        y_j = [node(level, y + 1, x) for y in range(ny - 1) for x in range(nx)]
        base.add_edges(y_i, y_j, gy)

    # Phase 3: vertical coupling between adjacent levels.
    for level in range(len(elements) - 1):
        lower = elements[level]
        upper = elements[level + 1]
        if isinstance(lower, Layer) and isinstance(upper, Layer):
            r = _half_resistance(lower, area) + _half_resistance(upper, area)
            lower_level, upper_level = level, level + 1
        else:
            cavity, cavity_level = (
                (lower, level)
                if isinstance(lower, Cavity)
                else (upper, level + 1)
            )
            solid, solid_level = (
                (upper, level + 1)
                if isinstance(lower, Cavity)
                else (lower, level)
            )
            if isinstance(cavity, TwoPhaseCavity):
                h_eff = cavity.geometry.effective_htc(
                    cavity.boiling_htc(), cavity.wall_material.conductivity
                )
            else:
                h_eff = cavity_effective_htc(
                    cavity.geometry, cavity.coolant, cavity.wall_material
                )
            r = _half_resistance(solid, area) + 1.0 / (h_eff * area)
            lower_level, upper_level = solid_level, cavity_level
        i = [node(lower_level, y, x) for y in range(ny) for x in range(nx)]
        j = [node(upper_level, y, x) for y in range(ny) for x in range(nx)]
        base.add_edges(i, j, 1.0 / r)

    # Phase 4: wall-conduction bypass across each cavity.
    for level, element in enumerate(elements):
        if not isinstance(element, Cavity):
            continue
        below = elements[level - 1]
        above = elements[level + 1]
        wall_fraction = 1.0 - element.geometry.porosity
        r = (
            _half_resistance(below, area)
            + element.thickness
            / (element.wall_material.conductivity * wall_fraction * area)
            + _half_resistance(above, area)
        )
        i = [node(level - 1, y, x) for y in range(ny) for x in range(nx)]
        j = [node(level + 1, y, x) for y in range(ny) for x in range(nx)]
        base.add_edges(i, j, 1.0 / r)

    # Phase 5: two-phase saturation anchors.
    for level, element in enumerate(elements):
        if not isinstance(element, TwoPhaseCavity):
            continue
        cells = [node(level, y, x) for y in range(ny) for x in range(nx)]
        base.add_diagonal(cells, TWO_PHASE_ANCHOR_W_PER_K)
        for cell in cells:
            b_base[cell] += TWO_PHASE_ANCHOR_W_PER_K * element.saturation_k

    # Phase 6: advection stencils per single-phase cavity.
    per_cavity_adv: Dict[str, csr_matrix] = {}
    per_cavity_b: Dict[str, np.ndarray] = {}
    for level, element in enumerate(elements):
        if not isinstance(element, Cavity) or isinstance(
            element, TwoPhaseCavity
        ):
            continue
        builder = ConductanceBuilder(n)
        cells = [node(level, y, x) for y in range(ny) for x in range(nx)]
        builder.add_diagonal(cells, 1.0)
        down = [node(level, y, x) for y in range(ny) for x in range(1, nx)]
        up = [node(level, y, x - 1) for y in range(ny) for x in range(1, nx)]
        builder.add_off_diagonal(down, up, -1.0)
        c_b = np.zeros(n)
        for y in range(ny):
            c_b[node(level, y, 0)] = 1.0
        per_cavity_adv[element.name] = builder.to_csr()
        per_cavity_b[element.name] = c_b
        b_adv += c_b

    # Phase 7: lumped air sink.
    if grid.has_sink_node:
        top_level = len(elements) - 1
        top = elements[top_level]
        sink = grid.sink_index
        g_cell = 1.0 / _half_resistance(top, area)
        top_cells = [node(top_level, y, x) for y in range(ny) for x in range(nx)]
        base.add_edges(top_cells, [sink] * len(top_cells), g_cell)
        base.add_diagonal([sink], stack.sink_conductance)
        b_base[sink] = stack.sink_conductance * model.ambient
        capacitance[sink] = stack.sink_capacitance

    a_adv = csr_matrix((n, n))
    for matrix in per_cavity_adv.values():
        a_adv = a_adv + matrix

    return SimpleNamespace(
        a_base=base.to_csr(),
        a_adv=a_adv,
        per_cavity_adv=per_cavity_adv,
        per_cavity_b=per_cavity_b,
        b_base=b_base,
        b_adv=b_adv,
        capacitance=capacitance,
    )
