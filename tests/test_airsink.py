"""Lumped air heat sink."""

import pytest

from repro import constants
from repro.heat_transfer import AirHeatSink


def test_table_i_defaults():
    sink = AirHeatSink()
    assert sink.conductance == constants.HEAT_SINK_CONDUCTANCE
    assert sink.capacitance == constants.HEAT_SINK_CAPACITANCE


def test_steady_rise():
    sink = AirHeatSink()
    # 70 W (a 2-tier stack) through 10 W/K: 7 K above ambient.
    assert sink.steady_rise(70.0) == pytest.approx(7.0)


def test_time_constant():
    sink = AirHeatSink()
    assert sink.time_constant() == pytest.approx(14.0)


def test_validation():
    with pytest.raises(ValueError):
        AirHeatSink(conductance=0.0)
    with pytest.raises(ValueError):
        AirHeatSink(fan_power=-1.0)
    with pytest.raises(ValueError):
        AirHeatSink().steady_rise(-1.0)
