"""AMG hierarchy construction, determinism, equivalence and telemetry."""

import numpy as np
import pytest
from scipy import sparse

from repro.geometry import CoolingMode, build_3d_mpsoc
from repro.obs.metrics import get_registry
from repro.thermal import CompactThermalModel
from repro.thermal.amg import (
    AmgOptions,
    AmgPreconditioner,
    algebraic_aggregates,
    amg_flavor,
    geometric_aggregates,
    have_pyamg,
)
from repro.thermal.diagnostics import FactorizationError
from repro.thermal.krylov import AmgSolver


def _poisson_1d(n: int) -> sparse.csr_matrix:
    main = np.full(n, 2.0)
    off = np.full(n - 1, -1.0)
    return sparse.diags([off, main, off], (-1, 0, 1)).tocsr()


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def test_geometric_aggregates_partition_and_compose():
    agg, coarse = geometric_aggregates((4, 8, 8), (2, 4, 4))
    assert coarse == (2, 2, 2)
    assert agg.size == 4 * 8 * 8
    # A partition: every aggregate id in range, every id used.
    assert agg.min() == 0 and agg.max() == 7
    assert np.unique(agg).size == 8
    # Each (2, 4, 4) block holds exactly 32 fine cells.
    assert np.bincount(agg).tolist() == [32] * 8
    # Ragged extents round up instead of dropping cells.
    agg2, coarse2 = geometric_aggregates((3, 5, 5), (2, 4, 4))
    assert coarse2 == (2, 2, 2)
    assert agg2.size == 3 * 5 * 5
    assert np.unique(agg2).size == 8


def test_geometric_aggregates_follow_grid_layout():
    agg, _ = geometric_aggregates((2, 4, 4), (2, 4, 4))
    # One aggregate covering the whole grid.
    assert np.array_equal(agg, np.zeros(32, dtype=agg.dtype))
    agg, coarse = geometric_aggregates((2, 4, 4), (1, 4, 4))
    # z splits only: flat layout is z*ny*nx + y*nx + x.
    assert coarse == (2, 1, 1)
    assert np.array_equal(agg[:16], np.zeros(16, dtype=agg.dtype))
    assert np.array_equal(agg[16:], np.ones(16, dtype=agg.dtype))


def test_algebraic_aggregates_partition_and_determinism():
    A = _poisson_1d(200)
    agg, n_agg = algebraic_aggregates(A, theta=0.1, seed=0)
    assert agg.size == 200
    assert agg.min() >= 0 and agg.max() == n_agg - 1
    assert np.unique(agg).size == n_agg
    assert 1 < n_agg < 200  # actually coarsens, not trivially
    agg2, n_agg2 = algebraic_aggregates(A, theta=0.1, seed=0)
    assert n_agg2 == n_agg
    assert np.array_equal(agg, agg2)


def test_algebraic_aggregates_isolated_nodes_become_singletons():
    A = sparse.identity(5, format="csr")
    agg, n_agg = algebraic_aggregates(A)
    assert n_agg == 5
    assert np.unique(agg).size == 5


# ---------------------------------------------------------------------------
# options validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"block": (0, 4, 4)},
        {"block": (1, 1, 1)},
        {"presmooth": -1},
        {"presmooth": 0, "postsmooth": 0},
        {"coarse_limit": 0},
        {"max_levels": 0},
        {"strength_theta": 1.0},
        {"rho_iterations": 0},
    ],
)
def test_amg_options_validation(kwargs):
    with pytest.raises(ValueError):
        AmgOptions(**kwargs)


# ---------------------------------------------------------------------------
# hierarchy construction
# ---------------------------------------------------------------------------


def test_scipy_hierarchy_coarsens_to_the_limit(monkeypatch):
    monkeypatch.setenv("REPRO_AMG", "scipy")
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    model = CompactThermalModel(stack, nx=24, ny=20)
    options = AmgOptions(coarse_limit=200)
    pre = AmgPreconditioner(
        model.system_matrix(),
        options,
        grid_shape=(model.grid.levels, model.grid.ny, model.grid.nx),
        n_extra=1 if model.grid.has_sink_node else 0,
    )
    sizes = list(pre.level_sizes)
    assert pre.flavor == "scipy"
    assert sizes[0] == model.grid.size
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] <= options.coarse_limit
    # Galerkin coarse operators stay a small multiple of nnz(A).
    assert 1.0 <= pre.operator_complexity < 2.0


def test_hierarchy_is_deterministic(monkeypatch):
    monkeypatch.setenv("REPRO_AMG", "scipy")
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    model = CompactThermalModel(stack, nx=16, ny=12)
    A = model.system_matrix()
    kwargs = dict(
        grid_shape=(model.grid.levels, model.grid.ny, model.grid.nx),
        n_extra=1 if model.grid.has_sink_node else 0,
    )
    one = AmgPreconditioner(A, AmgOptions(coarse_limit=100), **kwargs)
    two = AmgPreconditioner(A, AmgOptions(coarse_limit=100), **kwargs)
    b = np.linspace(0.0, 1.0, A.shape[0])
    assert np.array_equal(one.cycle(b), two.cycle(b))


def test_grid_shape_mismatch_is_a_factorization_error(monkeypatch):
    monkeypatch.setenv("REPRO_AMG", "scipy")
    A = _poisson_1d(64)
    with pytest.raises(FactorizationError):
        AmgPreconditioner(A, AmgOptions(coarse_limit=8), grid_shape=(2, 4, 4))


def test_algebraic_path_without_grid_shape(monkeypatch):
    monkeypatch.setenv("REPRO_AMG", "scipy")
    A = _poisson_1d(4096)
    pre = AmgPreconditioner(A, AmgOptions(coarse_limit=64))
    assert pre.level_sizes[-1] <= 64
    solver = AmgSolver(A, amg=AmgOptions(coarse_limit=64))
    rhs = np.ones(4096)
    solution, iterations = solver.solve(rhs)
    from scipy.sparse.linalg import spsolve

    assert np.allclose(solution, spsolve(A.tocsc(), rhs), atol=1e-6)
    assert iterations < 100


# ---------------------------------------------------------------------------
# flavor forcing
# ---------------------------------------------------------------------------


def test_forced_scipy_flavor(monkeypatch):
    monkeypatch.setenv("REPRO_AMG", "scipy")
    assert amg_flavor() == "scipy"


def test_forced_pyamg_without_package_raises(monkeypatch):
    if have_pyamg():
        pytest.skip("pyamg installed; the forced path cannot fail here")
    monkeypatch.setenv("REPRO_AMG", "pyamg")
    with pytest.raises(FactorizationError, match="pyamg"):
        amg_flavor()


def test_default_flavor_matches_availability(monkeypatch):
    monkeypatch.delenv("REPRO_AMG", raising=False)
    assert amg_flavor() == ("pyamg" if have_pyamg() else "scipy")


# ---------------------------------------------------------------------------
# model integration
# ---------------------------------------------------------------------------


def test_amg_steady_matches_direct(uniform_core_powers, liquid_stack_2tier):
    amg = CompactThermalModel(
        liquid_stack_2tier, nx=12, ny=10, solver="amg"
    )
    direct = CompactThermalModel(
        liquid_stack_2tier, nx=12, ny=10, solver="direct"
    )
    field = amg.steady_state(uniform_core_powers)
    expected = direct.steady_state(uniform_core_powers)
    assert np.allclose(field.values, expected.values, atol=1e-6)
    diagnostics = amg.last_steady_diagnostics
    assert diagnostics.method == "bicgstab+amg"
    assert diagnostics.iterations is not None
    assert not diagnostics.fallback_to_iterative
    assert amg.steady_stats.amg_solves == 1
    assert amg.steady_stats.direct_solves == 0


def test_amg_solver_cache_and_eviction(liquid_stack_2tier):
    model = CompactThermalModel(
        liquid_stack_2tier, nx=12, ny=10, solver="amg"
    )
    powers = {ref: 2.0 for ref in model.block_order}
    model.steady_state(powers)
    before = model.steady_cache_info()
    model.steady_state(powers)
    after = model.steady_cache_info()
    assert after.hits == before.hits + 1
    # Warm start: the repeated identical solve converges immediately.
    assert model.last_steady_diagnostics.iterations == 0
    assert model.evict_steady_factor()  # drops the cached hierarchy
    assert not model.evict_steady_factor()


def test_amg_setup_telemetry(liquid_stack_2tier):
    registry = get_registry()
    start = registry.snapshot()
    model = CompactThermalModel(
        liquid_stack_2tier, nx=12, ny=10, solver="amg"
    )
    powers = {ref: 2.0 for ref in model.block_order}
    model.steady_state(powers)
    delta = registry.delta_since(start)
    assert delta["solver.amg.setups"]["value"] == 1
    assert delta["solver.amg.solves"]["value"] == 1
    # On a grid this small the coarse LU *is* the preconditioner, so
    # BiCGSTAB may converge before its first callback; zero-valued
    # deltas are omitted from the snapshot.
    assert delta.get("solver.amg.iterations", {}).get("value", 0) >= 0
    assert delta["solver.backend_selected.amg"]["value"] >= 1


def test_scenario_spec_accepts_amg_backend():
    from repro.scenario import (
        PolicySpec,
        Scenario,
        SolverSpec,
        StackSpec,
        WorkloadSpec,
    )
    from repro.scenario.runner import build_model

    scenario = Scenario(
        stack=StackSpec(tiers=2, cooling="liquid"),
        workload=WorkloadSpec(name="database", duration=4),
        policy=PolicySpec(name="LC_FUZZY"),
        solver=SolverSpec(backend="amg", nx=12, ny=10),
        label="amg-roundtrip",
    )
    assert scenario.solver.backend == "amg"
    clone = Scenario.from_dict(scenario.to_dict())
    assert clone.solver.backend == "amg"
    model = build_model(scenario)
    assert model.steady_backend() == "amg"
