"""Reporting helpers and the paper-claim registry."""

import pytest

from repro.analysis import Table, format_table, percent_change, PAPER_CLAIMS, within_band


def test_table_rendering_alignment():
    table = Table("Demo", ["policy", "peak [C]"])
    table.add_row("AC_LB", 87.0)
    table.add_row("LC_FUZZY", 68.0)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "AC_LB" in text and "LC_FUZZY" in text
    # All data lines have equal column starts.
    assert lines[2].index("peak") == lines[4].index("87.0")


def test_table_wrong_cell_count():
    table = Table("Demo", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only one")


def test_percent_change():
    assert percent_change(100.0, 50.0) == pytest.approx(-50.0)
    assert percent_change(2.0, 3.0) == pytest.approx(50.0)
    with pytest.raises(ValueError):
        percent_change(0.0, 1.0)


def test_claims_bands_contain_paper_values():
    for key, claim in PAPER_CLAIMS.items():
        assert claim.low <= claim.value <= claim.high, key


def test_within_band():
    claim = PAPER_CLAIMS["fig8_htc_ratio"]
    assert within_band(claim, 8.0)
    assert not within_band(claim, 20.0)


def test_headline_claims_present():
    for key in (
        "max_cooling_saving_pct",
        "max_system_saving_pct",
        "lc_lb_2tier_peak_c",
        "fig8_htc_ratio",
        "scalability_backside_rise_k",
    ):
        assert key in PAPER_CLAIMS


def test_format_table_standalone():
    text = format_table("T", ["x"], [["1"], ["22"]])
    assert text.splitlines()[-1].startswith("22")
