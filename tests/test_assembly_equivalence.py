"""Bit-for-bit equivalence of vectorised and loop-built assembly.

The vectorised production assembly and the nested-loop reference of
``tests/reference_assembly.py`` share only the deterministic
:class:`~repro.thermal.assembly.ConductanceBuilder`; index arithmetic
and conductance evaluation are derived independently.  Equality is
asserted on the raw CSR arrays with ``==`` — no tolerances — so any
reordering, index slip or formula drift fails loudly.
"""

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.geometry import CoolingMode, build_3d_mpsoc
from repro.thermal.assembly import ConductanceBuilder
from repro.thermal.model import CompactThermalModel

from .reference_assembly import reference_assemble


def _assert_csr_identical(produced: csr_matrix, reference: csr_matrix) -> None:
    assert produced.shape == reference.shape
    assert produced.nnz == reference.nnz
    assert np.array_equal(produced.indptr, reference.indptr)
    assert np.array_equal(produced.indices, reference.indices)
    # Bitwise: == on float64, not allclose.
    assert np.array_equal(produced.data, reference.data)


STACKS = {
    "liquid-2tier": lambda: build_3d_mpsoc(2),
    "air-2tier": lambda: build_3d_mpsoc(2, CoolingMode.AIR),
    "liquid-4tier": lambda: build_3d_mpsoc(4),
    "two-phase-2tier": lambda: build_3d_mpsoc(2, two_phase=True),
}


@pytest.fixture(scope="module", params=sorted(STACKS), name="pair")
def _pair(request):
    model = CompactThermalModel(STACKS[request.param](), nx=12, ny=10)
    return model, reference_assemble(model)


def test_base_matrix_bit_for_bit(pair):
    model, ref = pair
    _assert_csr_identical(model._a_base, ref.a_base)


def test_advection_matrices_bit_for_bit(pair):
    model, ref = pair
    assert sorted(model._cavity_levels) == sorted(ref.per_cavity_adv)
    for name, matrix in ref.per_cavity_adv.items():
        _assert_csr_identical(model.cavity_advection_matrix(name), matrix)
    _assert_csr_identical(model._a_adv, ref.a_adv)


def test_vectors_bit_for_bit(pair):
    model, ref = pair
    assert np.array_equal(model._b_base, ref.b_base)
    assert np.array_equal(model._b_adv, ref.b_adv)
    assert np.array_equal(model.capacitance, ref.capacitance)
    for name, vector in model._per_cavity_b.items():
        assert np.array_equal(vector, ref.per_cavity_b[name])


def test_non_square_grid_bit_for_bit():
    """nx != ny catches transposed index arithmetic."""
    model = CompactThermalModel(build_3d_mpsoc(2), nx=9, ny=14)
    ref = reference_assemble(model)
    _assert_csr_identical(model._a_base, ref.a_base)
    _assert_csr_identical(model._a_adv, ref.a_adv)


def test_builder_rejects_duplicate_off_diagonals():
    builder = ConductanceBuilder(4)
    builder.add_edges([0], [1], 1.0)
    builder.add_edges([0], [1], 2.0)  # same edge again: contract violation
    with pytest.raises(AssertionError, match="duplicate"):
        builder.to_csr()


def test_injection_matches_per_block_spreading():
    """The injection operator equals power/cells spreading per block.

    The operator stores ``1/cells`` and multiplies by the block power,
    where the seed divided ``power/cells`` directly — mathematically
    identical, so the comparison uses a one-ulp-tight tolerance rather
    than bitwise equality.
    """
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    masks = model.block_masks()
    rng = np.random.default_rng(7)
    powers = {ref: float(p) for ref, p in zip(masks, rng.uniform(0.5, 4.0, len(masks)))}
    expected = np.zeros(model.grid.size)
    for ref, mask in masks.items():
        level = model.grid.level_of(ref[0])
        cells = model.grid.flat_indices(level, mask)
        expected[cells] += powers[ref] / cells.size
    produced = model.power_vector(powers)
    np.testing.assert_allclose(produced, expected, rtol=1e-15, atol=0.0)
