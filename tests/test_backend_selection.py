"""Backend tiering pinned at the limits, env overrides, fallback chain."""

import numpy as np
import pytest

from repro.geometry import CoolingMode, build_3d_mpsoc
from repro.obs.metrics import get_registry
from repro.thermal import CompactThermalModel
from repro.thermal.diagnostics import (
    FactorizationError,
    IterativeConvergenceError,
)
from repro.thermal.krylov import (
    AMG_NODE_LIMIT,
    DIRECT_NODE_LIMIT,
    SOLVER_CHOICES,
    AmgSolver,
    amg_node_limit,
    choose_backend,
    direct_node_limit,
    exact_fallback_backend,
)
from repro.thermal.rom import RomOptions


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_DIRECT_NODE_LIMIT", raising=False)
    monkeypatch.delenv("REPRO_AMG_NODE_LIMIT", raising=False)


@pytest.mark.parametrize(
    "n_nodes,expected",
    [
        (1, "direct"),
        (DIRECT_NODE_LIMIT - 1, "direct"),
        (DIRECT_NODE_LIMIT, "direct"),
        # AMG_NODE_LIMIT defaults to DIRECT_NODE_LIMIT, so the ILU tier
        # has no auto window of its own: above the limit auto goes
        # straight to the raw-speed tier.
        (DIRECT_NODE_LIMIT + 1, "amg"),
        (10 * DIRECT_NODE_LIMIT, "amg"),
    ],
)
def test_auto_tier_pinned_at_the_node_limit(n_nodes, expected):
    assert choose_backend("auto", n_nodes) == expected


@pytest.mark.parametrize("backend", ["direct", "iterative", "amg", "rom"])
@pytest.mark.parametrize("n_nodes", [1, DIRECT_NODE_LIMIT, 10**9])
def test_explicit_requests_pass_through(backend, n_nodes):
    assert backend in SOLVER_CHOICES
    assert choose_backend(backend, n_nodes) == backend


@pytest.mark.parametrize(
    "override,n_nodes,expected",
    [
        ("100", 100, "direct"),
        # Between the lowered direct limit and the default AMG limit
        # the ILU window is open.
        ("100", 101, "iterative"),
        ("0", 1, "iterative"),
        ("0", 0, "direct"),
        ("-5", 1, "iterative"),  # negative clamps to 0
        ("junk", DIRECT_NODE_LIMIT, "direct"),  # malformed -> default
        ("junk", DIRECT_NODE_LIMIT + 1, "amg"),
    ],
)
def test_env_override_pins_the_auto_tier(
    monkeypatch, override, n_nodes, expected
):
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", override)
    assert choose_backend("auto", n_nodes) == expected


def test_direct_node_limit_reads_env(monkeypatch):
    assert direct_node_limit() == DIRECT_NODE_LIMIT
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "42")
    assert direct_node_limit() == 42
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "not-a-number")
    assert direct_node_limit() == DIRECT_NODE_LIMIT


def test_amg_node_limit_defaults_and_reads_env(monkeypatch):
    assert AMG_NODE_LIMIT == DIRECT_NODE_LIMIT
    assert amg_node_limit() == AMG_NODE_LIMIT
    monkeypatch.setenv("REPRO_AMG_NODE_LIMIT", "123456")
    assert amg_node_limit() == 123456
    monkeypatch.setenv("REPRO_AMG_NODE_LIMIT", "banana")
    assert amg_node_limit() == AMG_NODE_LIMIT


def test_amg_node_limit_reopens_the_ilu_window(monkeypatch):
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "100")
    monkeypatch.setenv("REPRO_AMG_NODE_LIMIT", "1000")
    assert choose_backend("auto", 100) == "direct"
    assert choose_backend("auto", 500) == "iterative"
    assert choose_backend("auto", 1000) == "iterative"
    assert choose_backend("auto", 1001) == "amg"


def test_malformed_env_limit_is_counted(monkeypatch):
    registry = get_registry()
    start = registry.snapshot()
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "seventy-five-thousand")
    assert direct_node_limit() == DIRECT_NODE_LIMIT
    assert direct_node_limit() == DIRECT_NODE_LIMIT
    delta = registry.delta_since(start)
    # Counted per parse (telemetry sees the ongoing mis-tiering risk);
    # the log/trace warning itself fires once per variable per process.
    assert delta["solver.env.invalid"]["value"] >= 2


@pytest.mark.parametrize(
    "n_nodes,expected",
    [
        (DIRECT_NODE_LIMIT, "direct"),
        (DIRECT_NODE_LIMIT + 1, "amg"),
    ],
)
def test_rom_exact_fallback_follows_the_auto_rule(n_nodes, expected):
    assert exact_fallback_backend(n_nodes) == expected


def test_rom_exact_fallback_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "10")
    assert exact_fallback_backend(11) == "iterative"
    assert exact_fallback_backend(10) == "direct"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown solver"):
        choose_backend("quantum", 100)


def test_rom_chain_falls_back_to_iterative_then_direct(monkeypatch):
    """rom -> iterative -> direct: an out-of-trust rom query on a grid
    above the (env-lowered) node limit runs the Krylov path, whose own
    direct fallback remains behind it."""
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    opts = RomOptions(
        flow_points=3,
        max_modes=24,
        validation_queries=2,
        transient_calibration_steps=4,
        transient_snapshots=3,
    )
    model = CompactThermalModel(stack, nx=12, ny=10, solver="rom", rom=opts)
    reference = CompactThermalModel(stack, nx=12, ny=10, solver="iterative")
    powers = {
        ref: 2.0 for ref in model.block_order
    }
    model.set_flow(5.0)  # below the trained range -> rom rejects
    reference.set_flow(5.0)
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "1")
    field = model.steady_state(powers)
    assert model.last_steady_diagnostics.method == "bicgstab"
    expected = reference.steady_state(powers)
    assert np.array_equal(field.values, expected.values)

    # With the limit back at the default the same rejected query lands
    # on the direct LU instead.
    monkeypatch.delenv("REPRO_DIRECT_NODE_LIMIT")
    direct = CompactThermalModel(stack, nx=12, ny=10, solver="direct")
    direct.set_flow(5.0)
    field = model.steady_state(powers)
    assert model.last_steady_diagnostics.method == "direct"
    assert np.array_equal(
        field.values, direct.steady_state(powers).values
    )


# ---------------------------------------------------------------------------
# forced-failure amg -> iterative -> direct chain
# ---------------------------------------------------------------------------


def _force_amg_failure(monkeypatch, mode):
    """Break the AMG tier: hierarchy setup or BiCGSTAB convergence."""
    if mode == "setup":
        def broken_init(self, *args, **kwargs):
            raise FactorizationError("forced AMG setup failure")

        monkeypatch.setattr(AmgSolver, "__init__", broken_init)
    else:
        def broken_solve(self, rhs, x0=None):
            raise IterativeConvergenceError("forced AMG non-convergence")

        monkeypatch.setattr(AmgSolver, "solve", broken_solve)


@pytest.mark.parametrize("failure", ["setup", "convergence"])
def test_amg_chain_falls_back_to_iterative(monkeypatch, failure):
    """amg -> iterative: a broken AMG tier must answer through the ILU
    path with observables bitwise identical to a plain iterative model,
    and the hop must land in the fallback counters."""
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    model = CompactThermalModel(stack, nx=12, ny=10, solver="amg")
    reference = CompactThermalModel(stack, nx=12, ny=10, solver="iterative")
    powers = {ref: 2.0 for ref in model.block_order}
    registry = get_registry()
    start = registry.snapshot()
    _force_amg_failure(monkeypatch, failure)
    field = model.steady_state(powers)
    diagnostics = model.last_steady_diagnostics
    assert diagnostics.method == "bicgstab"
    assert diagnostics.fallback_to_iterative
    assert not diagnostics.fallback_to_direct
    assert not diagnostics.healthy()
    assert model.steady_stats.fallbacks_to_iterative == 1
    assert model.steady_stats.iterative_solves == 1
    assert model.steady_stats.amg_solves == 0
    delta = registry.delta_since(start)
    assert delta["solver.fallback.amg_to_iterative"]["value"] == 1
    assert "solver.fallback.iterative_to_direct" not in delta
    expected = reference.steady_state(powers)
    assert np.array_equal(field.values, expected.values)


@pytest.mark.parametrize("failure", ["setup", "convergence"])
def test_amg_chain_falls_back_to_iterative_then_direct(monkeypatch, failure):
    """amg -> iterative -> direct: with both Krylov tiers broken the
    guarded direct LU must produce the exact direct-model observables
    while both fallback hops are counted."""
    import repro.thermal.model as model_module

    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    model = CompactThermalModel(stack, nx=12, ny=10, solver="amg")
    reference = CompactThermalModel(stack, nx=12, ny=10, solver="direct")
    powers = {ref: 2.0 for ref in model.block_order}
    registry = get_registry()
    start = registry.snapshot()
    _force_amg_failure(monkeypatch, failure)

    class BrokenKrylov:
        def __init__(self, *args, **kwargs):
            raise FactorizationError("forced ILU setup failure")

    monkeypatch.setattr(model_module, "KrylovSolver", BrokenKrylov)
    field = model.steady_state(powers)
    diagnostics = model.last_steady_diagnostics
    assert diagnostics.method == "direct"
    assert diagnostics.fallback_to_iterative
    assert diagnostics.fallback_to_direct
    assert model.steady_stats.fallbacks_to_iterative == 1
    assert model.steady_stats.fallbacks_to_direct == 1
    assert model.steady_stats.direct_solves == 1
    delta = registry.delta_since(start)
    assert delta["solver.fallback.amg_to_iterative"]["value"] == 1
    assert delta["solver.fallback.iterative_to_direct"]["value"] == 1
    expected = reference.steady_state(powers)
    assert np.array_equal(field.values, expected.values)
