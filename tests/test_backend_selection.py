"""Backend tiering pinned at the limits, env overrides, fallback chain."""

import numpy as np
import pytest

from repro.geometry import CoolingMode, build_3d_mpsoc
from repro.thermal import CompactThermalModel
from repro.thermal.krylov import (
    DIRECT_NODE_LIMIT,
    SOLVER_CHOICES,
    choose_backend,
    direct_node_limit,
    exact_fallback_backend,
)
from repro.thermal.rom import RomOptions


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_DIRECT_NODE_LIMIT", raising=False)


@pytest.mark.parametrize(
    "n_nodes,expected",
    [
        (1, "direct"),
        (DIRECT_NODE_LIMIT - 1, "direct"),
        (DIRECT_NODE_LIMIT, "direct"),
        (DIRECT_NODE_LIMIT + 1, "iterative"),
        (10 * DIRECT_NODE_LIMIT, "iterative"),
    ],
)
def test_auto_tier_pinned_at_the_node_limit(n_nodes, expected):
    assert choose_backend("auto", n_nodes) == expected


@pytest.mark.parametrize("backend", ["direct", "iterative", "rom"])
@pytest.mark.parametrize("n_nodes", [1, DIRECT_NODE_LIMIT, 10**9])
def test_explicit_requests_pass_through(backend, n_nodes):
    assert backend in SOLVER_CHOICES
    assert choose_backend(backend, n_nodes) == backend


@pytest.mark.parametrize(
    "override,n_nodes,expected",
    [
        ("100", 100, "direct"),
        ("100", 101, "iterative"),
        ("0", 1, "iterative"),
        ("0", 0, "direct"),
        ("-5", 1, "iterative"),  # negative clamps to 0
        ("junk", DIRECT_NODE_LIMIT, "direct"),  # malformed -> default
        ("junk", DIRECT_NODE_LIMIT + 1, "iterative"),
    ],
)
def test_env_override_pins_the_auto_tier(
    monkeypatch, override, n_nodes, expected
):
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", override)
    assert choose_backend("auto", n_nodes) == expected


def test_direct_node_limit_reads_env(monkeypatch):
    assert direct_node_limit() == DIRECT_NODE_LIMIT
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "42")
    assert direct_node_limit() == 42
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "not-a-number")
    assert direct_node_limit() == DIRECT_NODE_LIMIT


@pytest.mark.parametrize(
    "n_nodes,expected",
    [
        (DIRECT_NODE_LIMIT, "direct"),
        (DIRECT_NODE_LIMIT + 1, "iterative"),
    ],
)
def test_rom_exact_fallback_follows_the_auto_rule(n_nodes, expected):
    assert exact_fallback_backend(n_nodes) == expected


def test_rom_exact_fallback_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "10")
    assert exact_fallback_backend(11) == "iterative"
    assert exact_fallback_backend(10) == "direct"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown solver"):
        choose_backend("quantum", 100)


def test_rom_chain_falls_back_to_iterative_then_direct(monkeypatch):
    """rom -> iterative -> direct: an out-of-trust rom query on a grid
    above the (env-lowered) node limit runs the Krylov path, whose own
    direct fallback remains behind it."""
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    opts = RomOptions(
        flow_points=3,
        max_modes=24,
        validation_queries=2,
        transient_calibration_steps=4,
        transient_snapshots=3,
    )
    model = CompactThermalModel(stack, nx=12, ny=10, solver="rom", rom=opts)
    reference = CompactThermalModel(stack, nx=12, ny=10, solver="iterative")
    powers = {
        ref: 2.0 for ref in model.block_order
    }
    model.set_flow(5.0)  # below the trained range -> rom rejects
    reference.set_flow(5.0)
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "1")
    field = model.steady_state(powers)
    assert model.last_steady_diagnostics.method == "bicgstab"
    expected = reference.steady_state(powers)
    assert np.array_equal(field.values, expected.values)

    # With the limit back at the default the same rejected query lands
    # on the direct LU instead.
    monkeypatch.delenv("REPRO_DIRECT_NODE_LIMIT")
    direct = CompactThermalModel(stack, nx=12, ny=10, solver="direct")
    direct.set_flow(5.0)
    field = model.steady_state(powers)
    assert model.last_steady_diagnostics.method == "direct"
    assert np.array_equal(
        field.values, direct.steady_state(powers).values
    )
