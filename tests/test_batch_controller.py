"""BatchFuzzyThermalController: batched decisions bitwise match decide()."""

import numpy as np
import pytest

from repro.core import BatchFuzzyThermalController, FuzzyThermalController

CORES = ["core0", "core1", "core2", "core3"]


def _step_inputs(rng, n_sims):
    sims = []
    for _ in range(n_sims):
        temps = {core: 300.0 + 60.0 * float(rng.random()) for core in CORES}
        utils = {core: float(rng.random()) for core in CORES}
        sims.append((temps, utils))
    return sims


def test_decide_many_bitwise_matches_decide():
    rng = np.random.default_rng(5)
    batch = BatchFuzzyThermalController.of_size(3)
    reference = [FuzzyThermalController() for _ in range(3)]
    for step in range(6):
        time = 0.1 * step
        sims = _step_inputs(rng, 3)
        expected = [
            controller.decide(time, temps, utils)
            for controller, (temps, utils) in zip(reference, sims)
        ]
        got = batch.decide_many(
            time,
            [temps for temps, _ in sims],
            [utils for _, utils in sims],
        )
        # Exact equality: the batched Mamdani inference is bitwise the
        # per-simulation inference, and all scalar state (trend, flow
        # boost) lives in the per-simulation controllers either way.
        assert got == expected


def test_decide_many_handles_lost_sensors():
    batch = BatchFuzzyThermalController.of_size(3)
    reference = [FuzzyThermalController() for _ in range(3)]
    nan = float("nan")
    utils = {core: 0.5 for core in CORES}
    sims = [
        # One dead diode: fail-safe max flow, blind core throttled.
        ({"core0": 310.0, "core1": nan, "core2": 320.0, "core3": 315.0}, utils),
        # Total sensor loss: max flow, everything at the lowest point.
        ({core: nan for core in CORES}, utils),
        # Healthy sibling keeps normal fuzzy control.
        ({core: 305.0 + i for i, core in enumerate(CORES)}, utils),
    ]
    expected = [
        controller.decide(0.0, temps, sim_utils)
        for controller, (temps, sim_utils) in zip(reference, sims)
    ]
    got = batch.decide_many(
        0.0,
        [temps for temps, _ in sims],
        [sim_utils for _, sim_utils in sims],
    )
    assert got == expected
    assert batch.controllers[0].last_lost_sensors == ["core1"]
    assert batch.controllers[1].last_lost_sensors == CORES
    assert batch.controllers[2].last_lost_sensors == []


def test_decide_many_validates_inputs():
    batch = BatchFuzzyThermalController.of_size(2)
    temps = {core: 310.0 for core in CORES}
    utils = {core: 0.5 for core in CORES}
    with pytest.raises(ValueError):
        # One reading set for two simulations.
        batch.decide_many(0.0, [temps], [utils, utils])
    with pytest.raises(ValueError):
        # Mismatched core sets within one simulation.
        batch.decide_many(
            0.0, [temps, {"other": 300.0}], [utils, utils]
        )


def test_observe_achieved_flows_and_reset_fan_out():
    batch = BatchFuzzyThermalController.of_size(2)
    batch.observe_achieved_flows([40.0, 40.0], [40.0, 10.0])
    # The starved simulation's controller accumulated boost state; the
    # healthy one did not — the wrapper must keep them independent.
    assert batch.controllers[0]._flow_boost == 1.0
    assert batch.controllers[1]._flow_boost > 1.0
    batch.reset()
    temps = {core: 310.0 for core in CORES}
    utils = {core: 0.5 for core in CORES}
    fresh = FuzzyThermalController()
    assert batch.decide_many(0.0, [temps, temps], [utils, utils]) == [
        fresh.decide(0.0, temps, utils)
    ] * 2


def test_of_size_requires_controllers():
    with pytest.raises(ValueError):
        BatchFuzzyThermalController([])
    assert len(BatchFuzzyThermalController.of_size(4)) == 4
