"""Block-level thermal model: consistency with the grid model."""

import pytest

from repro.geometry import CoolingMode, build_3d_mpsoc
from repro.thermal import BlockThermalModel, CompactThermalModel


def core_powers(stack, watts=5.0):
    return {
        (layer.name, block.name): watts
        for layer, block in stack.iter_blocks()
        if block.kind == "core"
    }


@pytest.fixture(scope="module", params=[CoolingMode.LIQUID, CoolingMode.AIR])
def model_pair(request):
    stack = build_3d_mpsoc(2, request.param)
    return (
        BlockThermalModel(stack),
        CompactThermalModel(stack),
        core_powers(stack),
    )


def test_node_count_is_tiny(model_pair):
    block_model, _, _ = model_pair
    assert block_model.size < 40


def test_block_temperatures_track_grid_model(model_pair):
    """Design-ranking fidelity: every block within 10 K, peak within 5 K."""
    block_model, grid_model, powers = model_pair
    block_temps = block_model.steady_state(powers)
    field = grid_model.steady_state(powers)
    grid_temps = field.block_temperatures(grid_model.block_masks(), reduce="mean")
    for ref, temp in block_temps.items():
        assert temp == pytest.approx(grid_temps[ref], abs=10.0)
    assert max(block_temps.values()) == pytest.approx(
        max(grid_temps.values()), abs=5.0
    )


def test_hot_core_is_hot_in_both_models(model_pair):
    block_model, grid_model, powers = model_pair
    hot = ("tier0_die", "core3")
    powers = dict(powers)
    powers[hot] = 9.0
    block_temps = block_model.steady_state(powers)
    field = grid_model.steady_state(powers)
    grid_temps = field.block_temperatures(grid_model.block_masks(), reduce="mean")
    hottest_block = max(block_temps, key=block_temps.get)
    hottest_grid = max(
        (ref for ref in grid_temps if ref[0] == "tier0_die"),
        key=grid_temps.get,
    )
    assert hottest_block == hot
    assert hottest_grid == hot


def test_flow_ordering_preserved():
    stack = build_3d_mpsoc(2)
    model = BlockThermalModel(stack)
    powers = core_powers(stack)
    model.set_flow(10.0)
    hot = model.peak(powers)
    model.set_flow(32.3)
    cold = model.peak(powers)
    assert cold < hot


def test_power_monotonicity():
    stack = build_3d_mpsoc(2)
    model = BlockThermalModel(stack)
    low = model.peak(core_powers(stack, 2.0))
    high = model.peak(core_powers(stack, 8.0))
    assert high > low


def test_two_phase_stack_supported():
    stack = build_3d_mpsoc(2, two_phase=True)
    model = BlockThermalModel(stack)
    temps = model.steady_state(core_powers(stack))
    cavity = stack.cavities[0]
    # Every block sits above the loop saturation temperature.
    assert all(t > cavity.saturation_k for t in temps.values())
    # And far cooler than single-phase water at the same load.
    water = BlockThermalModel(build_3d_mpsoc(2))
    assert max(temps.values()) < water.peak(core_powers(water.stack))


def test_energy_input_validation():
    stack = build_3d_mpsoc(2)
    model = BlockThermalModel(stack)
    with pytest.raises(KeyError):
        model.steady_state({("nope", "nope"): 1.0})
    with pytest.raises(ValueError):
        model.steady_state({("tier0_die", "core0"): -1.0})
    with pytest.raises(ValueError):
        model.set_flow(0.0)
    with pytest.raises(ValueError):
        BlockThermalModel(stack, segments=1)


def test_faster_than_grid_model(model_pair):
    import time

    block_model, grid_model, powers = model_pair
    t0 = time.perf_counter()
    for _ in range(10):
        block_model.steady_state(powers)
    block_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    grid_model.steady_state(powers)
    grid_s = time.perf_counter() - t0
    assert block_s / 10 < grid_s
