"""Flow-boiling heat-transfer models."""

import pytest
from hypothesis import given, strategies as st

from repro.heat_transfer import (
    FlowBoilingModel,
    cooper_pool_boiling_htc,
    convective_film_htc,
    flow_boiling_htc,
)
from repro.materials import R134A, R236FA, R245FA

T = 303.15
DH = 147e-6


def test_cooper_flux_exponent():
    h1 = cooper_pool_boiling_htc(R245FA, T, 1e4)
    h2 = cooper_pool_boiling_htc(R245FA, T, 2e4)
    assert h2 / h1 == pytest.approx(2.0**0.67, rel=1e-6)


def test_cooper_magnitude_reasonable():
    # kW/(m^2 K) territory at 10 W/cm^2 for HFC refrigerants.
    h = cooper_pool_boiling_htc(R236FA, T, 1e5)
    assert 2e3 < h < 3e4


def test_fitted_model_hits_fig8_ratios():
    """The defining Section IV-B behaviour: a 15.1x flux hot spot raises
    the HTC ~8x so the superheat only doubles."""
    m = FlowBoilingModel()
    h_bg = m.htc(R245FA, T, 2e4, 0.05, DH)
    h_hs = m.htc(R245FA, T, 30.2e4, 0.08, DH)
    ratio = h_hs / h_bg
    superheat_ratio = (30.2e4 / h_hs) / (2e4 / h_bg)
    assert 6.0 < ratio < 10.0
    assert 1.5 < superheat_ratio < 2.5


def test_film_term_weakly_flow_dependent():
    """Section III: flow boiling is only a weak function of the flow rate
    — the model's HTC has no G dependence at all at fixed quality."""
    m = FlowBoilingModel()
    assert m.htc(R245FA, T, 5e4, 0.1, DH) == m.htc(R245FA, T, 5e4, 0.1, DH)


def test_film_enhancement_grows_with_quality():
    low = convective_film_htc(R245FA, T, 0.05, DH)
    high = convective_film_htc(R245FA, T, 0.5, DH)
    assert high > low


def test_asymptotic_blend_bounded_by_components():
    m = FlowBoilingModel()
    h_nb = m.nucleate_htc(R245FA, T, 5e4)
    h_cb = convective_film_htc(R245FA, T, 0.1, DH)
    h = m.htc(R245FA, T, 5e4, 0.1, DH)
    assert max(h_nb, h_cb) <= h <= h_nb + h_cb


def test_module_level_helper_matches_default_model():
    assert flow_boiling_htc(R245FA, T, 5e4, 0.1, DH) == pytest.approx(
        FlowBoilingModel().htc(R245FA, T, 5e4, 0.1, DH)
    )


@given(q=st.floats(1e3, 1e6))
def test_htc_monotone_in_flux(q):
    m = FlowBoilingModel()
    assert m.htc(R245FA, T, q * 1.1, 0.1, DH) > m.htc(R245FA, T, q, 0.1, DH)


@pytest.mark.parametrize("refrigerant", [R134A, R236FA, R245FA])
def test_all_refrigerants_supported(refrigerant):
    assert FlowBoilingModel().htc(refrigerant, T, 5e4, 0.1, DH) > 0.0


def test_invalid_inputs_rejected():
    m = FlowBoilingModel()
    with pytest.raises(ValueError):
        m.nucleate_htc(R245FA, T, 0.0)
    with pytest.raises(ValueError):
        convective_film_htc(R245FA, T, 1.5, DH)
    with pytest.raises(ValueError):
        FlowBoilingModel(exponent=1.2)
    with pytest.raises(ValueError):
        cooper_pool_boiling_htc(R245FA, T, -1.0)
