"""Micro-channel cavity geometry."""

import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.geometry import MicroChannelGeometry
from repro.geometry.stack import default_channel_geometry
from repro.materials import WATER
from repro.units import ml_per_min_to_m3_per_s


@pytest.fixture()
def table_i_geometry():
    return default_channel_geometry()


def test_table_i_dimensions(table_i_geometry):
    g = table_i_geometry
    assert g.width == constants.CHANNEL_WIDTH
    assert g.pitch == constants.CHANNEL_PITCH
    assert g.height == constants.INTERTIER_THICKNESS


def test_cross_section_below_paper_limit(table_i_geometry):
    # Section II-D: channel cross-section less than 100 x 50 um^2.
    g = table_i_geometry
    assert g.width <= 50e-6 + 1e-12
    assert g.height <= 100e-6 + 1e-12


def test_hydraulic_diameter_formula(table_i_geometry):
    g = table_i_geometry
    expected = 2.0 * g.width * g.height / (g.width + g.height)
    assert g.hydraulic_diameter == pytest.approx(expected)
    assert g.hydraulic_diameter == pytest.approx(66.67e-6, rel=1e-3)


def test_porosity_is_one_third(table_i_geometry):
    assert table_i_geometry.porosity == pytest.approx(1.0 / 3.0)


def test_channel_count_across_die(table_i_geometry):
    # 10 mm span at 0.15 mm pitch -> 66 channels.
    assert table_i_geometry.channel_count == 66


def test_flow_remains_laminar_at_max_rate(table_i_geometry):
    q = ml_per_min_to_m3_per_s(constants.FLOW_RATE_MAX_ML_MIN)
    assert table_i_geometry.reynolds(q, WATER) < 300.0


def test_mean_velocity_scaling(table_i_geometry):
    q = ml_per_min_to_m3_per_s(10.0)
    v1 = table_i_geometry.mean_velocity(q)
    v2 = table_i_geometry.mean_velocity(2 * q)
    assert v2 == pytest.approx(2 * v1)


def test_fin_efficiency_bounds(table_i_geometry):
    eta = table_i_geometry.fin_efficiency(40000.0, 130.0)
    assert 0.0 < eta <= 1.0
    # Short, thick silicon fins are very efficient.
    assert eta > 0.9


def test_effective_htc_exceeds_porosity_share(table_i_geometry):
    h = 30000.0
    h_eff = table_i_geometry.effective_htc(h, 130.0)
    assert h_eff > h * table_i_geometry.porosity  # fins add area
    assert h_eff < h * 3.0  # but bounded by total wetted area


def test_wall_bypass_coefficient(table_i_geometry):
    g = table_i_geometry
    expected = 130.0 * (1.0 - g.porosity) / g.height
    assert g.wall_bypass_coefficient(130.0) == pytest.approx(expected)


@given(
    width=st.floats(10e-6, 140e-6),
    height=st.floats(20e-6, 500e-6),
)
def test_hydraulic_diameter_below_min_side(width, height):
    g = MicroChannelGeometry(
        width=width, height=height, pitch=150e-6 if width < 150e-6 else width * 1.5,
        length=1e-2, span=1e-2,
    )
    assert g.hydraulic_diameter <= 2 * min(width, height)
    assert 0.0 < g.aspect_ratio <= 1.0


def test_width_must_be_below_pitch():
    with pytest.raises(ValueError):
        MicroChannelGeometry(
            width=150e-6, height=100e-6, pitch=150e-6, length=1e-2, span=1e-2
        )
