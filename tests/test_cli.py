"""Command-line interface."""

import pytest

from repro.cli import main, build_parser


def test_fig8_command(capsys):
    assert main(["fig8", "--segments", "50"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 8" in out
    assert "HTC ratio" in out


def test_claims_command(capsys):
    assert main(["claims"]) == 0
    out = capsys.readouterr().out
    assert "fig8_htc_ratio" in out
    assert "EXPERIMENTS.md" in out


def test_simulate_command(capsys):
    code = main(
        [
            "simulate",
            "--tiers",
            "2",
            "--policy",
            "LC_LB",
            "--workload",
            "idle" if False else "web",
            "--duration",
            "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "peak temperature" in out
    assert "LC_LB" in out


def test_simulate_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["simulate", "--workload", "nosuch", "--duration", "5"])


def test_traces_command(tmp_path, capsys):
    out_dir = tmp_path / "traces"
    assert (
        main(
            [
                "traces",
                "--out",
                str(out_dir),
                "--threads",
                "8",
                "--duration",
                "10",
            ]
        )
        == 0
    )
    written = sorted(p.name for p in out_dir.glob("*.csv"))
    assert written == [
        "database.csv",
        "max-utilisation.csv",
        "multimedia.csv",
        "web.csv",
    ]
    # Round-trips through the loader.
    from repro.workload import load_trace_csv

    trace = load_trace_csv(out_dir / "web.csv")
    assert trace.threads == 8
    assert trace.intervals == 10


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_service_verbs_are_registered():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--root", "/tmp/x", "--workers", "3", "--no-fsync"]
    )
    assert args.workers == 3 and args.no_fsync
    args = parser.parse_args(["submit", "spec.json", "--wait"])
    assert args.spec == "spec.json" and args.wait
    args = parser.parse_args(["jobs", "--health"])
    assert args.health


def test_submit_against_a_live_service(tmp_path, capsys):
    import json

    from repro.service import RetryPolicy, ScenarioJobService
    from tests.chaos import make_scenario

    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(make_scenario("cli-live").to_dict()))
    service = ScenarioJobService(
        tmp_path / "svc", max_workers=1, retry=RetryPolicy(retries=0),
        fsync=False, poll_interval_s=0.02,
    )
    service.start_background()
    try:
        code = main(
            [
                "submit",
                str(spec),
                "--socket",
                str(service.address),
                "--wait",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DONE" in out
        assert "peak_temperature_c" in out
    finally:
        service.stop_background()
