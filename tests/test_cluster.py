"""Cluster-level pumping network (Section II-D's 70 W remark)."""

import pytest

from repro.hydraulics.cluster import (
    PAPER_CLUSTER_PUMP_BUDGET_W,
    ClusterCoolingNetwork,
    stacks_for_budget,
)


def test_seventy_watt_budget_feeds_six_stacks():
    # 70 W / 11.176 W per 2-tier stack at max flow = 6 stacks.
    assert stacks_for_budget() == 6


def test_cluster_power_scales_with_stacks():
    one = ClusterCoolingNetwork(stacks=1)
    six = ClusterCoolingNetwork(stacks=6)
    assert six.power(32.3) == pytest.approx(6 * one.power(32.3))


def test_paper_cluster_is_about_70w():
    cluster = ClusterCoolingNetwork(stacks=6)
    assert cluster.max_power() == pytest.approx(67.056)
    assert cluster.max_power() == pytest.approx(
        PAPER_CLUSTER_PUMP_BUDGET_W, rel=0.06
    )


def test_cluster_pump_comparable_to_one_stack_chip_power():
    """The remark's punchline: the cluster pump burns as much as one
    2-tier MPSoC chip (~60-70 W in our calibration)."""
    from repro.geometry import build_3d_mpsoc
    from repro.power import PowerModel

    cluster = ClusterCoolingNetwork(stacks=6)
    stack = build_3d_mpsoc(2)
    pm = PowerModel(stack)
    chip_w = pm.breakdown({ref: 0.95 for ref in pm.core_refs}).total
    assert cluster.max_power() == pytest.approx(chip_w, rel=0.25)


def test_per_stack_flow_control_saves():
    cluster = ClusterCoolingNetwork(stacks=4)
    mixed = [10.0, 15.0, 20.0, 32.3]
    saving = cluster.saving_vs_worst_case(mixed)
    assert 0.0 < saving < cluster.pump.max_saving_fraction() + 1e-9


def test_all_min_flow_hits_headline_saving():
    cluster = ClusterCoolingNetwork(stacks=6)
    saving = cluster.saving_vs_worst_case([10.0] * 6)
    assert saving == pytest.approx(cluster.pump.max_saving_fraction())


def test_multi_cavity_stacks():
    two_tier = ClusterCoolingNetwork(stacks=1, cavities_per_stack=1)
    four_tier = ClusterCoolingNetwork(stacks=1, cavities_per_stack=3)
    assert four_tier.power(20.0) == pytest.approx(3 * two_tier.power(20.0))


def test_validation():
    with pytest.raises(ValueError):
        ClusterCoolingNetwork(stacks=0)
    with pytest.raises(ValueError):
        ClusterCoolingNetwork(stacks=1, cavities_per_stack=0)
    with pytest.raises(ValueError):
        ClusterCoolingNetwork(stacks=2).power_per_stack_flows([10.0])
    with pytest.raises(ValueError):
        stacks_for_budget(0.0)
