"""The LC_FUZZY joint flow-rate + DVFS controller."""

import pytest

from repro import constants
from repro.core import FuzzyThermalController
from repro.units import celsius_to_kelvin


def k(c):
    return celsius_to_kelvin(c)


def cores(temp_c, util, n=4):
    temps = {f"c{i}": k(temp_c) for i in range(n)}
    utils = {f"c{i}": util for i in range(n)}
    return temps, utils


def test_cool_idle_system_gets_minimum_flow():
    ctrl = FuzzyThermalController()
    temps, utils = cores(45.0, 0.05)
    flow, _ = ctrl.decide(0.0, temps, utils)
    assert flow == pytest.approx(constants.FLOW_RATE_MIN_ML_MIN)


def test_hot_system_gets_maximum_flow():
    ctrl = FuzzyThermalController()
    temps, utils = cores(80.0, 0.9)
    flow, _ = ctrl.decide(0.0, temps, utils)
    assert flow == pytest.approx(constants.FLOW_RATE_MAX_ML_MIN)


def test_threshold_breach_forces_maximum_flow():
    ctrl = FuzzyThermalController()
    temps, utils = cores(86.0, 0.1)  # hot despite low utilisation
    flow, _ = ctrl.decide(0.0, temps, utils)
    assert flow == pytest.approx(constants.FLOW_RATE_MAX_ML_MIN)


def test_flow_monotone_in_temperature():
    ctrl = FuzzyThermalController()
    flows = []
    for t_c in (45.0, 55.0, 62.0, 70.0, 78.0):
        ctrl.reset()
        temps, utils = cores(t_c, 0.5)
        flow, _ = ctrl.decide(0.0, temps, utils)
        flows.append(flow)
    assert all(b >= a for a, b in zip(flows, flows[1:]))
    assert flows[-1] > flows[0]


def test_flow_commands_are_quantised():
    ctrl = FuzzyThermalController(flow_settings=8)
    grid = set(ctrl.flow_grid.round(6))
    for t_c in (45.0, 52.0, 59.0, 66.0, 73.0, 80.0):
        ctrl.reset()
        temps, utils = cores(t_c, 0.5)
        flow, _ = ctrl.decide(0.0, temps, utils)
        assert round(flow, 6) in grid


def test_busy_cores_run_at_nominal_speed():
    """High-utilisation cores are never throttled — the reason the paper
    reports < 0.01 % performance degradation for LC_FUZZY."""
    ctrl = FuzzyThermalController()
    temps, utils = cores(60.0, 0.95)
    _, vf = ctrl.decide(0.0, temps, utils)
    assert all(idx == 0 for idx in vf.values())


def test_idle_cores_are_downscaled():
    ctrl = FuzzyThermalController()
    temps, utils = cores(50.0, 0.02)
    _, vf = ctrl.decide(0.0, temps, utils)
    assert all(idx == ctrl.vf_table.lowest_index for idx in vf.values())


def test_mixed_utilisations_get_per_core_settings():
    ctrl = FuzzyThermalController()
    temps = {"busy": k(60.0), "idle": k(55.0)}
    utils = {"busy": 0.95, "idle": 0.03}
    _, vf = ctrl.decide(0.0, temps, utils)
    assert vf["busy"] < vf["idle"]


def test_rising_trend_raises_flow():
    ctrl = FuzzyThermalController(trend_smoothing=0.0)
    temps, utils = cores(58.0, 0.5)
    ctrl.decide(0.0, temps, utils)
    rising, _ = ctrl.decide(0.1, {c: t + 0.12 for c, t in temps.items()}, utils)

    ctrl2 = FuzzyThermalController(trend_smoothing=0.0)
    ctrl2.decide(0.0, temps, utils)
    steady, _ = ctrl2.decide(0.1, temps, utils)
    assert rising >= steady


def test_reset_clears_trend():
    ctrl = FuzzyThermalController()
    temps, utils = cores(60.0, 0.5)
    ctrl.decide(0.0, temps, utils)
    ctrl.decide(1.0, temps, utils)
    ctrl.reset()
    assert ctrl._trend == 0.0


def test_mismatched_cores_rejected():
    ctrl = FuzzyThermalController()
    with pytest.raises(ValueError):
        ctrl.decide(0.0, {"a": k(60.0)}, {"b": 0.5})


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        FuzzyThermalController(flow_settings=1)
    with pytest.raises(ValueError):
        FuzzyThermalController(trend_smoothing=1.0)
    with pytest.raises(ValueError):
        FuzzyThermalController(flow_min_ml_min=40.0, flow_max_ml_min=30.0)
