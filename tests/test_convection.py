"""Single-phase convection correlations."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.stack import default_channel_geometry
from repro.heat_transfer import (
    laminar_nusselt_rect,
    channel_htc,
    cavity_effective_htc,
)
from repro.materials import WATER


def test_nusselt_limits():
    # Parallel plates: Nu = 8.235; square duct (H1): Nu ~ 3.6.
    assert laminar_nusselt_rect(1e-9) == pytest.approx(8.235, rel=1e-6)
    assert laminar_nusselt_rect(1.0) == pytest.approx(3.6, rel=0.05)


@given(st.floats(0.01, 1.0))
def test_nusselt_positive(a):
    assert laminar_nusselt_rect(a) > 0.0


def test_nusselt_rejects_bad_aspect():
    with pytest.raises(ValueError):
        laminar_nusselt_rect(0.0)
    with pytest.raises(ValueError):
        laminar_nusselt_rect(1.5)


def test_channel_htc_magnitude():
    # Nu k / Dh for 50x100 um water channels: tens of kW/(m^2 K) — the
    # regime the paper's inter-tier cooling relies on.
    g = default_channel_geometry()
    h = channel_htc(g, WATER)
    assert 20e3 < h < 80e3


def test_htc_flow_independent():
    # Fully developed laminar: h does not change with the flow rate.
    g = default_channel_geometry()
    assert channel_htc(g, WATER) == channel_htc(g, WATER)


def test_smaller_hydraulic_diameter_higher_htc():
    """Section II-C: 'The smaller the hydraulic diameter at a given mass
    flow rate, the higher the heat transfer'."""
    from repro.geometry import MicroChannelGeometry

    narrow = MicroChannelGeometry(
        width=30e-6, height=100e-6, pitch=150e-6, length=1e-2, span=1e-2
    )
    wide = MicroChannelGeometry(
        width=100e-6, height=100e-6, pitch=150e-6, length=1e-2, span=1e-2
    )
    assert channel_htc(narrow, WATER) > channel_htc(wide, WATER)


def test_cavity_effective_htc_accounts_for_fins():
    g = default_channel_geometry()
    h = channel_htc(g, WATER)
    h_eff = cavity_effective_htc(g, WATER)
    # Porosity is 1/3, fins contribute ~2/3 more wetted area.
    assert h_eff > h * g.porosity
    assert h_eff == pytest.approx(g.effective_htc(h, 130.0), rel=1e-9)
