"""The pluggable cooling-backend layer (``repro.cooling``).

Covers the backend registry and dispatch, the single-phase HTC dedupe,
the dynamic two-phase coupling (Fig. 8 fidelity, LRU caching, dry-out
taxonomy, fault forcing), the closed-loop actuation path, and the
hash-stability contract: specs written before the cooling layer keep
byte-identical ``content_hash`` / ``model_hash``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cooling import (
    TWO_PHASE_ANCHOR_W_PER_K,
    AirSinkBackend,
    CoolingBackend,
    CoolingConfig,
    SinglePhaseLiquidBackend,
    TwoPhaseBackend,
    backend_for_cavity,
    backend_names,
    effective_htc_for,
    register_backend,
)
from repro.faults import DryoutFault, FaultScenario, run_fault_campaign
from repro.geometry.channels import MicroChannelGeometry
from repro.geometry.stack import Cavity, TwoPhaseCavity
from repro.heat_transfer.convection import cavity_effective_htc
from repro.scenario import (
    CoolingSpec,
    FaultSpec,
    FlowFaultSpec,
    Runner,
    Scenario,
    ScenarioError,
)
from repro.thermal import CompactThermalModel, CoolingDryoutError, ThermalSolveError
from repro.twophase import FIG8_VEHICLE

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def fig8_cavity() -> TwoPhaseCavity:
    """A cavity whose backend evaporator matches the Fig. 8 vehicle."""
    evap = FIG8_VEHICLE.evaporator
    geometry = MicroChannelGeometry(
        width=evap.channel_width,
        height=evap.channel_height,
        pitch=evap.pitch,
        length=evap.length,
        span=(evap.channels + 0.5) * evap.pitch,
    )
    return TwoPhaseCavity(
        name="fig8",
        geometry=geometry,
        refrigerant=evap.refrigerant,
        saturation_k=FIG8_VEHICLE.inlet_saturation_k,
    )


def fig8_flow_ml_min(segments: int) -> float:
    """The vehicle's calibrated mass flow as a volumetric command."""
    from repro.units import ml_per_min_to_m3_per_s

    mass = FIG8_VEHICLE.operating_mass_flow(segments)
    rho = FIG8_VEHICLE.evaporator.refrigerant.liquid_density
    return mass / rho / ml_per_min_to_m3_per_s(1.0)


def fig8_flux() -> np.ndarray:
    flux = np.full(FIG8_VEHICLE.rows, FIG8_VEHICLE.background_flux)
    flux[2] = FIG8_VEHICLE.hotspot_flux
    return flux


def twophase_scenario(duration: int = 2, **stack_extra) -> Scenario:
    """A small, fast dynamic two-phase closed-loop scenario."""
    return Scenario.from_dict(
        {
            "stack": {
                "tiers": 2,
                "two_phase": True,
                "cooling_backend": {
                    "backend": "two_phase",
                    "refrigerant": "R245fa",
                },
                **stack_extra,
            },
            "workload": {"name": "web", "duration": duration},
            "policy": {"name": "LC_FUZZY"},
            "solver": {"nx": 12, "ny": 10},
        }
    )


# ---------------------------------------------------------------------------
# registry and dispatch
# ---------------------------------------------------------------------------


def test_registry_names_are_sorted_and_complete():
    names = backend_names()
    assert names == tuple(sorted(names))
    for expected in ("single_phase_liquid", "air_sink", "two_phase"):
        assert expected in names


def test_register_backend_rejects_non_backends():
    with pytest.raises(TypeError):
        register_backend("bogus", dict)


def test_backend_for_cavity_dispatches_on_cavity_type(liquid_stack_2tier):
    cavity = next(
        e for e in liquid_stack_2tier.elements if isinstance(e, Cavity)
    )
    assert isinstance(backend_for_cavity(cavity), SinglePhaseLiquidBackend)
    assert isinstance(backend_for_cavity(fig8_cavity()), TwoPhaseBackend)
    assert isinstance(
        fig8_cavity().cooling_backend(CoolingConfig()), TwoPhaseBackend
    )


def test_single_phase_htc_matches_legacy_dispatch(liquid_stack_2tier):
    """The dedupe point: backend HTC == the formula model.py inlined."""
    cavity = next(
        e for e in liquid_stack_2tier.elements if isinstance(e, Cavity)
    )
    expected = cavity_effective_htc(
        cavity.geometry, cavity.coolant, cavity.wall_material
    )
    backend = SinglePhaseLiquidBackend(cavity)
    assert backend.effective_htc() == expected
    assert effective_htc_for(cavity) == expected
    coupling = backend.fluid_coupling()
    assert coupling.kind == "advection"
    assert coupling.effective_htc == expected
    assert not backend.dynamic


def test_two_phase_static_coupling_exposes_anchor():
    cavity = fig8_cavity()
    backend = TwoPhaseBackend(cavity)
    coupling = backend.fluid_coupling()
    assert coupling.kind == "anchor"
    assert coupling.anchor_w_per_k == TWO_PHASE_ANCHOR_W_PER_K
    assert coupling.anchor_temperature_k == cavity.saturation_k
    assert not backend.dynamic  # default config is static


def test_air_sink_backend_has_no_cavity_htc(air_stack_2tier):
    backend = AirSinkBackend(air_stack_2tier)
    assert backend.fluid_coupling().kind == "sink"
    with pytest.raises(NotImplementedError):
        backend.effective_htc()


def test_base_backend_records_flow_and_resets():
    backend = CoolingBackend()
    assert backend.respond_to_flow(42.0) is None
    assert backend.hydraulic_state().flow_ml_min == 42.0
    backend.reset()
    assert backend.hydraulic_state().flow_ml_min is None


# ---------------------------------------------------------------------------
# Fig. 8 fidelity of the runtime backend
# ---------------------------------------------------------------------------


def test_runtime_backend_reproduces_fig8_profile():
    """The marching backend == the calibrated vehicle, row for row."""
    segments_per_row = 20
    segments = FIG8_VEHICLE.rows * segments_per_row
    backend = TwoPhaseBackend(
        fig8_cavity(),
        CoolingConfig(dynamic=True, segments_per_row=segments_per_row),
    )
    runtime = backend.respond_to_flow(fig8_flow_ml_min(segments), fig8_flux())
    reference = (
        FIG8_VEHICLE.solve(segments).row_means(FIG8_VEHICLE.rows).saturation_k
    )
    assert np.max(np.abs(runtime - reference)) < 0.05
    assert runtime[0] > runtime[-1]  # Fig. 8: saturation falls to outlet


def test_more_flow_lowers_outlet_quality():
    segments = FIG8_VEHICLE.rows * 20
    backend = TwoPhaseBackend(
        fig8_cavity(), CoolingConfig(dynamic=True, segments_per_row=20)
    )
    flow = fig8_flow_ml_min(segments)
    backend.respond_to_flow(flow, fig8_flux())
    base_quality = float(backend.hydraulic_state().quality[-1])
    backend.respond_to_flow(1.5 * flow, fig8_flux())
    boosted_quality = float(backend.hydraulic_state().quality[-1])
    assert boosted_quality < base_quality


def test_march_results_are_lru_cached():
    segments = FIG8_VEHICLE.rows * 4
    backend = TwoPhaseBackend(
        fig8_cavity(), CoolingConfig(dynamic=True, segments_per_row=4)
    )
    flow = fig8_flow_ml_min(segments)
    first = backend.respond_to_flow(flow, fig8_flux())
    again = backend.respond_to_flow(flow, fig8_flux())
    hits, misses, size, cap = backend.hydraulic_state().cache
    assert (hits, misses) == (1, 1)
    assert size == 1 and cap == 32
    np.testing.assert_array_equal(first, again)
    # A sub-quantum flow nudge maps to the same cache entry.
    backend.respond_to_flow(flow + 1e-5, fig8_flux())
    assert backend.hydraulic_state().cache[0] == 2


def test_dryout_surfaces_through_the_solver_taxonomy():
    backend = TwoPhaseBackend(
        fig8_cavity(), CoolingConfig(dynamic=True, segments_per_row=4)
    )
    hot = np.full(FIG8_VEHICLE.rows, 6e5)
    with pytest.raises(CoolingDryoutError) as excinfo:
        backend.respond_to_flow(4.0, hot)
    assert isinstance(excinfo.value, ThermalSolveError)
    assert excinfo.value.cavity == "fig8"
    assert backend.hydraulic_state().dryout_margin == 0.0


def test_dryout_fault_forces_inlet_quality():
    """An active DryoutFault erodes the margin; an expired one does not."""
    config = CoolingConfig(dynamic=True, segments_per_row=4)
    segments = FIG8_VEHICLE.rows * 4
    flow = fig8_flow_ml_min(segments)

    def margin(inlet_quality):
        backend = TwoPhaseBackend(fig8_cavity(), config)
        backend.respond_to_flow(flow, fig8_flux(), inlet_quality=inlet_quality)
        return backend.hydraulic_state().dryout_margin

    assert margin(0.6) < margin(None)


# ---------------------------------------------------------------------------
# model integration: anchors move the rhs, never the matrices
# ---------------------------------------------------------------------------


def _twophase_model(dynamic: bool) -> CompactThermalModel:
    scenario = twophase_scenario()
    from repro.scenario.runner import build_model, build_stack

    if not dynamic:
        scenario = Scenario.from_dict(
            {
                "stack": {"tiers": 2, "two_phase": True},
                "policy": {"name": "LC_FUZZY"},
                "solver": {"nx": 12, "ny": 10},
            }
        )
    return build_model(scenario, stack=build_stack(scenario.stack))


def test_static_two_phase_has_no_cooling_rhs():
    model = _twophase_model(dynamic=False)
    assert not model.update_cooling()
    assert model.cooling_rhs() is None
    assert model.dryout_margin() is None


def test_dynamic_anchor_moves_the_steady_state():
    model = _twophase_model(dynamic=True)
    assert model.cooled_cavity_names == ["cavity0"]
    powers = {}
    for layer, block in model.stack.iter_blocks():
        if block.kind == "core":
            powers[(layer.name, block.name)] = 4.0
    static = model.steady_state(powers)
    packed = np.array(
        [powers.get(ref, 0.0) for ref in model.block_order]
    )
    model.set_cavity_flow("cavity0", 15.0)
    assert model.update_cooling(packed)
    assert model.cooling_rhs() is not None
    marched = model.steady_state(powers)
    # The marched saturation sits below the static 30 degC anchor, so
    # the anchored fluid nodes cool down; everything stays finite.
    assert np.all(np.isfinite(marched.values))
    assert not np.allclose(static.values, marched.values)
    state = model.hydraulic_states()["cavity0"]
    assert state.dynamic and state.flow_ml_min == 15.0
    assert model.dryout_margin() is not None
    model.reset_cooling_state()
    assert model.cooling_rhs() is None


def test_unknown_cavity_keeps_legacy_error(liquid_model_coarse):
    with pytest.raises(KeyError):
        liquid_model_coarse.set_cavity_flow("nope", 10.0)
    with pytest.raises(KeyError):
        liquid_model_coarse.cooling_backend("nope")


# ---------------------------------------------------------------------------
# spec layer: validation and hash stability
# ---------------------------------------------------------------------------

GOLDEN_HASHES = {
    # Captured before the cooling-backend layer existed (PR 9 seed);
    # these specs must keep byte-identical hashes forever.
    "four_tier_fuzzy.json": (
        "ac93b1349f41eb1c81b2041fc7127993f29e1eea293d12e98c7c49e0eb7d8e2f",
        "3a6b0f5ad3f66f3ec5083ce9677ec2d728e6e60ae877782bd694e4d6a0006c5d",
    ),
    "two_tier_fuzzy.json": (
        "c9e0ae7a91da1ea669afc2bd5557f5d8d11cd6f8c17ec41c95e1d850c60c70b6",
        "54f2c5e6dea19b273ba785cefb70c56051fc8372cf2d65369a2e4fa45de908e8",
    ),
}

GOLDEN_DICTS = [
    (
        {},
        "4609ab3ef1b89b7476217c9067f45f078d03614a62b794724bcce162d09d0a1a",
        "54f2c5e6dea19b273ba785cefb70c56051fc8372cf2d65369a2e4fa45de908e8",
    ),
    (
        {"stack": {"tiers": 4}},
        "0bd8f5bfe20a5cdb4e8923e56feda836b250b2dfa86e8b823f023a944979720f",
        "3a6b0f5ad3f66f3ec5083ce9677ec2d728e6e60ae877782bd694e4d6a0006c5d",
    ),
    (
        {"policy": {"name": "AC_LB"}, "stack": {"cooling": "air"}},
        "9afe4e5081fc62e7e152566ed60304cbe75408dc4cd86881c931ddc9d4ba94fb",
        "78c4cbab4315e21f47c87bb0a29382f401f92c55637d27b9167cac5c92569a69",
    ),
    (
        {"stack": {"two_phase": True}},
        "5c78003748b9f3f7cd329d412792929e943f697fb94003be732e63a78a5ad335",
        "19626a2a7e1eb49bc0eb034f4fa5983be814ecb5351035a0c4b6dc6ae2f4308c",
    ),
]


def test_legacy_spec_files_keep_their_hashes():
    from pathlib import Path

    specs = Path(__file__).resolve().parent.parent / "examples" / "specs"
    for name, (content, model) in GOLDEN_HASHES.items():
        scenario = Scenario.load(specs / name)
        assert scenario.content_hash() == content, name
        assert scenario.model_hash() == model, name


def test_legacy_spec_dicts_keep_their_hashes():
    for data, content, model in GOLDEN_DICTS:
        scenario = Scenario.from_dict(data)
        assert scenario.content_hash() == content, data
        assert scenario.model_hash() == model, data


def test_absent_cooling_and_fault_fields_are_dropped_from_payload():
    plain = Scenario.from_dict(
        {"faults": {"flows": [{"kind": "pump-degradation"}]}}
    ).to_dict()
    assert "cooling_backend" not in plain["stack"]
    assert "inlet_quality" not in plain["faults"]["flows"][0]
    rich = twophase_scenario().to_dict()
    assert rich["stack"]["cooling_backend"]["backend"] == "two_phase"


def test_cooling_spec_round_trips_and_changes_the_hash():
    scenario = twophase_scenario()
    again = Scenario.from_json(scenario.to_json())
    assert again == scenario
    bare = Scenario.from_dict(
        {
            "stack": {"tiers": 2, "two_phase": True},
            "policy": {"name": "LC_FUZZY"},
            "solver": {"nx": 12, "ny": 10},
        }
    )
    assert scenario.content_hash() != bare.content_hash()
    assert scenario.model_hash() != bare.model_hash()


def test_cooling_spec_cross_validation():
    with pytest.raises(ScenarioError):
        Scenario.from_dict(
            {"stack": {"cooling_backend": {"backend": "two_phase"}}}
        )
    with pytest.raises(ScenarioError):
        CoolingSpec(backend="no-such-backend")
    with pytest.raises(ScenarioError):
        CoolingSpec(refrigerant="R00")
    with pytest.raises(ScenarioError):
        CoolingSpec(inlet_quality=1.0)
    with pytest.raises(ScenarioError):
        FlowFaultSpec(kind="pump-degradation", inlet_quality=0.5)
    with pytest.raises(ScenarioError):
        # Dryout faults need a two-phase stack.
        Scenario.from_dict(
            {"faults": {"flows": [{"kind": "dryout"}]}}
        )


# ---------------------------------------------------------------------------
# closed loop: flow commands move the saturation field
# ---------------------------------------------------------------------------


def test_closed_loop_flow_commands_move_the_saturation_field():
    simulator = Runner(twophase_scenario(duration=2)).build_simulator()
    result = simulator.run()
    state = simulator.model.hydraulic_states()["cavity0"]
    assert state.backend == "two_phase" and state.dynamic
    assert state.flow_ml_min is not None and state.flow_ml_min > 0.0
    # The marched profile moved off the static 303.15 K anchor...
    assert state.saturation_k is not None
    assert float(np.max(np.abs(state.saturation_k - 303.15))) > 1e-4
    # ...and falls from inlet to outlet (Fig. 8 shape), with the
    # margin accounted into the result.
    assert state.saturation_k[0] > state.saturation_k[-1]
    assert result.dryout_margin is not None
    assert 0.0 < result.dryout_margin < 1.0
    hits, misses, _size, _cap = state.cache
    assert hits + misses == 20  # one march per control step
    assert hits > 0  # the LRU cache absorbed repeated operating points


def test_dryout_fault_campaign_reports_margin_delta():
    base = twophase_scenario(duration=2)
    report = run_fault_campaign(
        base,
        scenarios=[
            FaultScenario(
                name="preheated-loop",
                faults=FaultSpec(
                    flows=(
                        FlowFaultSpec(kind="dryout", inlet_quality=0.3),
                    )
                ),
            ),
            FaultScenario(
                name="dried-out-loop",
                faults=FaultSpec(
                    flows=(
                        FlowFaultSpec(kind="dryout", inlet_quality=0.5),
                    )
                ),
            ),
        ],
        processes=1,
    )
    preheated, dried_out = report.outcomes
    # Pre-heating the inlet erodes the dry-out margin vs the baseline.
    assert preheated.completed
    assert preheated.dryout_margin_delta is not None
    assert preheated.dryout_margin_delta < 0.0
    assert "dMargin" in str(report.table())
    # Forcing past the dry-out limit surfaces through the solver-error
    # taxonomy as a structured failure, not a crashed campaign.
    assert not dried_out.completed
    assert dried_out.failure is not None
    assert dried_out.failure.error_type == "CoolingDryoutError"


def test_dryout_fault_spec_builds_the_fault():
    from repro.scenario.runner import build_faults

    faults = build_faults(
        FaultSpec(
            flows=(
                FlowFaultSpec(kind="dryout", inlet_quality=0.9, end=10.0),
            )
        )
    )
    fault = faults.flow_faults[0]
    assert isinstance(fault, DryoutFault)
    assert fault.inlet_quality == 0.9
    assert fault.active(5.0) and not fault.active(10.0)
    # Dryout faults leave the delivered flow untouched.
    assert fault.apply(5.0, {"cavity0": 20.0}) == {"cavity0": 20.0}
