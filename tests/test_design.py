"""Design-time exploration and co-design."""

import pytest

from repro.design import (
    codesign_cavity,
    flow_sweep,
    minimum_flow_for_limit,
    tier_ordering_study,
)
from repro.geometry import CoolingMode, TSVArray, build_3d_mpsoc
from repro.thermal import CompactThermalModel
from repro.units import celsius_to_kelvin


def core_powers(stack, watts=5.0):
    return {
        (layer.name, block.name): watts
        for layer, block in stack.iter_blocks()
        if block.kind == "core"
    }


@pytest.fixture(scope="module")
def liquid_model():
    stack = build_3d_mpsoc(2)
    return CompactThermalModel(stack, nx=12, ny=10), core_powers(stack)


# ---------------------------------------------------------------------------
# flow sweeps
# ---------------------------------------------------------------------------


def test_flow_sweep_monotone(liquid_model):
    model, powers = liquid_model
    curve = flow_sweep(model, powers, [10.0, 15.0, 20.0, 25.0, 32.3])
    peaks = [peak for _, peak in curve]
    assert all(b < a for a, b in zip(peaks, peaks[1:]))


def test_flow_sweep_requires_liquid():
    stack = build_3d_mpsoc(2, CoolingMode.AIR)
    model = CompactThermalModel(stack, nx=12, ny=10)
    with pytest.raises(ValueError):
        flow_sweep(model, core_powers(stack), [10.0])


def test_minimum_flow_bisection(liquid_model):
    model, powers = liquid_model
    limit = celsius_to_kelvin(60.0)
    flow = minimum_flow_for_limit(model, powers, limit)
    assert 10.0 <= flow <= 32.3
    peak = model.steady_state(powers, flow_ml_min=flow).max()
    assert peak <= limit + 0.1
    # A slightly smaller flow must violate the limit (tightness).
    if flow > 10.5:
        peak_below = model.steady_state(powers, flow_ml_min=flow - 0.5).max()
        assert peak_below > limit - 0.2


def test_minimum_flow_unreachable_limit(liquid_model):
    model, powers = liquid_model
    with pytest.raises(ValueError, match="unreachable"):
        minimum_flow_for_limit(model, powers, celsius_to_kelvin(30.0))


def test_minimum_flow_slack_limit(liquid_model):
    model, powers = liquid_model
    flow = minimum_flow_for_limit(model, powers, celsius_to_kelvin(120.0))
    assert flow == pytest.approx(10.0)


# ---------------------------------------------------------------------------
# tier ordering
# ---------------------------------------------------------------------------


def test_tier_ordering_covers_all_patterns():
    results = tier_ordering_study(4)
    assert set(results) == {"ccmm", "cmcm", "cmmc", "mccm", "mcmc", "mmcc"}


def test_stacked_core_tiers_run_hotter():
    """Adjacent core tiers concentrate power: 'mmcc'/'ccmm' must be
    worse than interleaved orderings."""
    results = tier_ordering_study(4)
    interleaved = min(results["cmcm"], results["mcmc"])
    assert results["mmcc"] > interleaved


def test_explicit_pattern_list():
    results = tier_ordering_study(4, patterns=["cmcm"])
    assert list(results) == ["cmcm"]


def test_tier_pattern_validation():
    with pytest.raises(ValueError, match="length"):
        build_3d_mpsoc(4, tier_pattern="cm")
    with pytest.raises(ValueError, match="equal counts"):
        build_3d_mpsoc(4, tier_pattern="cccm")
    with pytest.raises(ValueError, match="'c' and 'm'"):
        build_3d_mpsoc(4, tier_pattern="cxcm")


def test_pattern_controls_block_placement():
    stack = build_3d_mpsoc(4, tier_pattern="mccm")
    kinds = [
        "core" if layer.floorplan.blocks_of_kind("core") else "cache"
        for layer in stack.source_layers
    ]
    assert kinds == ["cache", "core", "core", "cache"]


# ---------------------------------------------------------------------------
# cavity co-design
# ---------------------------------------------------------------------------


def test_codesign_returns_cheapest_first():
    points = codesign_cavity(2, limit_k=celsius_to_kelvin(62.0))
    assert points, "at least one design must be feasible"
    pump_powers = [p.pumping_power_w for p in points]
    assert pump_powers == sorted(pump_powers)
    for p in points:
        assert p.peak_k <= celsius_to_kelvin(62.0) + 0.1


def test_codesign_prefers_wide_channels_at_loose_limits():
    """'Low pressure drop structures should be targeted': when many
    widths are feasible, the widest is the cheapest."""
    points = codesign_cavity(2, limit_k=celsius_to_kelvin(65.0))
    assert points[0].channel_width == max(p.channel_width for p in points)


def test_codesign_drops_infeasible_widths():
    loose = codesign_cavity(2, limit_k=celsius_to_kelvin(65.0))
    tight = codesign_cavity(2, limit_k=celsius_to_kelvin(52.0))
    assert len(tight) <= len(loose)


def test_codesign_respects_tsv_constraint():
    tsv = TSVArray(diameter=80e-6, pitch=150e-6)  # clear gap ~70 um
    points = codesign_cavity(
        2, limit_k=celsius_to_kelvin(65.0), tsv=tsv
    )
    assert all(p.channel_width <= tsv.max_channel_width for p in points)
    # A dense TSV field (24 um clear gap) rejects every candidate width.
    with pytest.raises(ValueError, match="fits between"):
        codesign_cavity(
            2,
            limit_k=celsius_to_kelvin(65.0),
            tsv=TSVArray(diameter=120e-6, pitch=145e-6),
            widths=(50e-6, 90e-6),
        )
