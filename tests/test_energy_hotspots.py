"""Energy accounting and hot-spot statistics."""

import pytest

from repro.core import EnergyAccount, HotSpotStats
from repro.units import celsius_to_kelvin


def k(c):
    return celsius_to_kelvin(c)


# ---------------------------------------------------------------------------
# EnergyAccount
# ---------------------------------------------------------------------------


def test_energy_integration():
    acc = EnergyAccount()
    acc.add(chip_w=50.0, pump_w=10.0, dt=2.0)
    acc.add(chip_w=60.0, pump_w=5.0, dt=1.0)
    assert acc.chip_j == pytest.approx(160.0)
    assert acc.pump_j == pytest.approx(25.0)
    assert acc.total_j == pytest.approx(185.0)
    assert acc.elapsed == pytest.approx(3.0)


def test_mean_powers():
    acc = EnergyAccount()
    acc.add(70.0, 11.176, 10.0)
    assert acc.mean_chip_w == pytest.approx(70.0)
    assert acc.mean_pump_w == pytest.approx(11.176)


def test_empty_account_neutral():
    acc = EnergyAccount()
    assert acc.total_j == 0.0
    assert acc.mean_chip_w == 0.0


def test_energy_validation():
    acc = EnergyAccount()
    with pytest.raises(ValueError):
        acc.add(-1.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        acc.add(1.0, -1.0, 1.0)
    with pytest.raises(ValueError):
        acc.add(1.0, 1.0, 0.0)


# ---------------------------------------------------------------------------
# HotSpotStats
# ---------------------------------------------------------------------------


def test_default_threshold_is_85c():
    stats = HotSpotStats()
    assert stats.threshold_k == pytest.approx(k(85.0))


def test_any_vs_avg_statistics():
    stats = HotSpotStats()
    # Two cores; only one exceeds for half the time.
    stats.update({"a": k(90.0), "b": k(60.0)}, dt=1.0)
    stats.update({"a": k(60.0), "b": k(60.0)}, dt=1.0)
    assert stats.percent_any == pytest.approx(50.0)
    # Core a hot 50 % of the time, core b never: average 25 %.
    assert stats.percent_avg == pytest.approx(25.0)


def test_all_cores_hot():
    stats = HotSpotStats()
    stats.update({"a": k(90.0), "b": k(91.0)}, dt=1.0)
    assert stats.percent_any == pytest.approx(100.0)
    assert stats.percent_avg == pytest.approx(100.0)


def test_peak_tracked():
    stats = HotSpotStats()
    stats.update({"a": k(70.0)}, dt=1.0)
    stats.update({"a": k(83.0)}, dt=1.0)
    assert stats.peak_k == pytest.approx(k(83.0))


def test_exactly_at_threshold_is_not_hot():
    stats = HotSpotStats()
    stats.update({"a": k(85.0)}, dt=1.0)
    assert stats.percent_any == 0.0


def test_update_validation():
    stats = HotSpotStats()
    with pytest.raises(ValueError):
        stats.update({}, dt=1.0)
    with pytest.raises(ValueError):
        stats.update({"a": k(60.0)}, dt=0.0)


def test_empty_stats_neutral():
    stats = HotSpotStats()
    assert stats.percent_any == 0.0
    assert stats.percent_avg == 0.0
