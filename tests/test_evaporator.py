"""Two-phase micro-evaporator marching model."""

import numpy as np
import pytest

from repro.twophase import MicroEvaporator, DryoutError
from repro.units import celsius_to_kelvin

INLET = celsius_to_kelvin(30.0)
FLOW = 3.5e-4  # kg/s, comfortably inside the operating envelope


def uniform_flux(value):
    return lambda z: value


def test_saturation_temperature_falls_downstream():
    """The defining Section III behaviour: the refrigerant exits COOLER
    than it enters, because Tsat follows the falling pressure."""
    evap = MicroEvaporator()
    sol = evap.march(uniform_flux(5e4), FLOW, INLET)
    assert sol.saturation_k[-1] < sol.saturation_k[0]
    assert np.all(np.diff(sol.saturation_k) <= 1e-12)


def test_pressure_monotonically_decreasing():
    evap = MicroEvaporator()
    sol = evap.march(uniform_flux(5e4), FLOW, INLET)
    assert np.all(np.diff(sol.pressure) < 0.0)


def test_quality_rises_with_absorbed_heat():
    evap = MicroEvaporator()
    sol = evap.march(uniform_flux(5e4), FLOW, INLET)
    assert np.all(np.diff(sol.quality) > 0.0)


def test_energy_balance_of_quality_rise():
    evap = MicroEvaporator()
    flux = 5e4
    sol = evap.march(uniform_flux(flux), FLOW, INLET, inlet_quality=0.03)
    total_heat = flux * evap.pitch * evap.length  # per channel
    mdot = FLOW / evap.channels
    h_fg = 190e3  # approximately constant over the 0.5 K span
    expected_dx = total_heat / (mdot * h_fg)
    actual_dx = sol.quality[-1] - 0.03 + (sol.quality[1] - sol.quality[0])
    assert actual_dx == pytest.approx(expected_dx, rel=0.05)


def test_wall_above_fluid_and_base_above_wall():
    evap = MicroEvaporator()
    sol = evap.march(uniform_flux(5e4), FLOW, INLET)
    assert np.all(sol.wall_k > sol.saturation_k)
    assert np.all(sol.base_k > sol.wall_k)


def test_higher_flux_higher_htc():
    evap = MicroEvaporator()
    low = evap.march(uniform_flux(2e4), FLOW, INLET)
    high = evap.march(uniform_flux(2e5), FLOW, INLET)
    assert high.htc.mean() > 3.0 * low.htc.mean()


def test_dryout_detected():
    evap = MicroEvaporator()
    with pytest.raises(DryoutError):
        evap.march(uniform_flux(5e4), 2e-5, INLET, inlet_quality=0.5)


def test_row_means_fold():
    evap = MicroEvaporator()
    sol = evap.march(uniform_flux(5e4), FLOW, INLET, segments=100)
    rows = sol.row_means(5)
    assert len(rows.z) == 5
    assert rows.quality[0] < rows.quality[-1]
    with pytest.raises(ValueError):
        sol.row_means(7)  # 100 not divisible by 7


def test_flux_array_input():
    evap = MicroEvaporator()
    segments = 50
    flux = np.full(segments, 5e4)
    flux[20:30] = 2e5
    sol = evap.march(flux, FLOW, INLET, segments=segments)
    assert sol.heat_flux[25] == pytest.approx(2e5)
    assert sol.htc[25] > 2.0 * sol.htc[5]


def test_flux_array_length_validated():
    evap = MicroEvaporator()
    with pytest.raises(ValueError):
        evap.march(np.full(10, 5e4), FLOW, INLET, segments=20)


def test_flow_calibration_hits_target_outlet():
    evap = MicroEvaporator()
    target = celsius_to_kelvin(29.5)
    flow = evap.flow_for_outlet_saturation(
        uniform_flux(5e4), INLET, target, segments=50
    )
    sol = evap.march(uniform_flux(5e4), flow, INLET, segments=50)
    assert sol.saturation_k[-1] == pytest.approx(target, abs=0.05)


def test_mass_flux_definition():
    evap = MicroEvaporator()
    g = evap.mass_flux(FLOW)
    assert g == pytest.approx(FLOW / (135 * 85e-6 * 560e-6))


def test_invalid_inputs_rejected():
    evap = MicroEvaporator()
    with pytest.raises(ValueError):
        evap.march(uniform_flux(5e4), FLOW, INLET, inlet_quality=1.0)
    with pytest.raises(ValueError):
        evap.march(uniform_flux(5e4), FLOW, INLET, segments=1)
    with pytest.raises(ValueError):
        evap.march(uniform_flux(-1.0), FLOW, INLET)
    with pytest.raises(ValueError):
        evap.mass_flux(0.0)
    with pytest.raises(ValueError):
        MicroEvaporator(channel_width=200e-6, pitch=150e-6)
