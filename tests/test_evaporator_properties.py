"""Property-based invariants of the two-phase evaporator (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.twophase import DryoutError, MicroEvaporator
from repro.units import celsius_to_kelvin

INLET = celsius_to_kelvin(30.0)


@pytest.fixture(scope="module")
def evaporator():
    return MicroEvaporator()


@given(
    fluxes=st.lists(
        st.floats(1e3, 3e5, allow_nan=False), min_size=20, max_size=20
    ),
    flow=st.floats(3e-4, 2e-3),
)
@settings(max_examples=25, deadline=None)
def test_saturation_never_rises(evaporator, fluxes, flow):
    """For ANY non-negative flux profile the local saturation temperature
    is non-increasing along the channel (pressure only drops)."""
    try:
        sol = evaporator.march(
            np.asarray(fluxes), flow, INLET, segments=20
        )
    except DryoutError:
        return  # a legitimate outcome for hot/slow combinations
    assert np.all(np.diff(sol.saturation_k) <= 1e-12)
    assert np.all(np.diff(sol.pressure) < 0.0)
    assert np.all(np.diff(sol.quality) >= 0.0)


@given(
    fluxes=st.lists(
        st.floats(1e3, 3e5, allow_nan=False), min_size=20, max_size=20
    ),
    flow=st.floats(3e-4, 2e-3),
)
@settings(max_examples=25, deadline=None)
def test_wall_superheat_positive_everywhere(evaporator, fluxes, flow):
    try:
        sol = evaporator.march(np.asarray(fluxes), flow, INLET, segments=20)
    except DryoutError:
        return
    assert np.all(sol.wall_k >= sol.saturation_k)
    assert np.all(sol.base_k >= sol.wall_k)


@given(flow=st.floats(3e-4, 2e-3))
@settings(max_examples=15, deadline=None)
def test_more_flow_less_quality_rise(evaporator, flow):
    flux = lambda z: 5e4  # noqa: E731 - terse fixture
    low = evaporator.march(flux, flow, INLET, segments=20)
    high = evaporator.march(flux, 1.5 * flow, INLET, segments=20)
    assert high.quality[-1] < low.quality[-1]


@given(scale=st.floats(0.5, 3.0))
@settings(max_examples=15, deadline=None)
def test_htc_scales_with_flux_everywhere(evaporator, scale):
    base = evaporator.march(lambda z: 5e4, 1e-3, INLET, segments=20)
    scaled = evaporator.march(
        lambda z: 5e4 * scale, 1e-3, INLET, segments=20
    )
    if scale > 1.0:
        assert np.all(scaled.htc >= base.htc)
    else:
        assert np.all(scaled.htc <= base.htc + 1e-9)
