"""Fault models, graceful controller degradation and fault campaigns."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import constants
from repro.core.controller import FuzzyThermalController
from repro.core.policies import LiquidFuzzy, LiquidLoadBalancing
from repro.core.simulator import SystemSimulator
from repro.faults import (
    ActuatorLagFault,
    CloggedCavityFault,
    DeadSensorFault,
    FaultScenario,
    FaultSet,
    NoisySensorFault,
    PumpDegradationFault,
    StuckSensorFault,
    run_fault_campaign,
)
from repro.thermal import TemperatureSensors
from tests.conftest import make_constant_trace


def _core_refs(stack):
    return [
        (layer.name, block.name)
        for layer, block in stack.iter_blocks()
        if block.kind == "core"
    ]


# ---------------------------------------------------------------------------
# fault models
# ---------------------------------------------------------------------------


def test_dead_sensor_active_window_only():
    fault = DeadSensorFault(start=1.0, end=2.0)
    assert fault(0.5, 310.0) == 310.0
    assert math.isnan(fault(1.0, 310.0))
    assert math.isnan(fault(1.9, 310.0))
    assert fault(2.0, 310.0) == 310.0


def test_stuck_sensor_holds_first_windowed_reading():
    fault = StuckSensorFault(start=1.0, end=3.0)
    assert fault(0.0, 300.0) == 300.0
    assert fault(1.0, 310.0) == 310.0  # sticks here
    assert fault(2.0, 325.0) == 310.0
    assert fault(3.0, 330.0) == 330.0  # window over, live again


def test_stuck_sensor_constant_value():
    fault = StuckSensorFault(value_k=350.0)
    assert fault(0.0, 300.0) == 350.0
    assert fault(5.0, 400.0) == 350.0


def test_noisy_sensor_is_seeded_and_windowed():
    a = NoisySensorFault(sigma_k=2.0, seed=7)
    b = NoisySensorFault(sigma_k=2.0, seed=7)
    seq_a = [a(0.0, 300.0) for _ in range(4)]
    seq_b = [b(0.0, 300.0) for _ in range(4)]
    assert seq_a == seq_b
    assert any(abs(x - 300.0) > 1e-9 for x in seq_a)
    off = NoisySensorFault(sigma_k=2.0, start=10.0)
    assert off(0.0, 300.0) == 300.0


def test_pump_degradation_scales_every_cavity():
    fault = PumpDegradationFault(remaining_fraction=0.7, start=1.0)
    flows = {"cav0": 30.0, "cav1": 20.0}
    assert fault.apply(0.0, flows) == flows
    degraded = fault.apply(1.5, flows)
    assert degraded["cav0"] == pytest.approx(21.0)
    assert degraded["cav1"] == pytest.approx(14.0)
    with pytest.raises(ValueError):
        PumpDegradationFault(remaining_fraction=0.0)


def test_clogged_cavity_is_local():
    fault = CloggedCavityFault(cavity="cav1", remaining_fraction=0.5)
    flows = {"cav0": 30.0, "cav1": 30.0}
    clogged = fault.apply(0.0, flows)
    assert clogged["cav0"] == 30.0
    assert clogged["cav1"] == pytest.approx(15.0)
    with pytest.raises(ValueError):
        CloggedCavityFault(cavity="")


def test_actuator_lag_delays_settings():
    lag = ActuatorLagFault(periods=2)
    commands = [{"c": step} for step in range(5)]
    effective = [lag.apply(command)["c"] for command in commands]
    # The oldest command is held until the queue fills, then settings
    # arrive exactly two control periods late.
    assert effective == [0, 0, 0, 1, 2]
    with pytest.raises(ValueError):
        ActuatorLagFault(periods=0)


def test_fault_set_describe_and_effective_flows():
    faults = FaultSet(
        sensor_faults={("tier0_die", "core0"): DeadSensorFault()},
        flow_faults=[PumpDegradationFault(remaining_fraction=0.8)],
        actuator_lag=ActuatorLagFault(periods=1),
    )
    summary = faults.describe()
    assert "DeadSensorFault" in summary
    assert "PumpDegradationFault" in summary
    assert "ActuatorLag(1)" in summary
    assert FaultSet().describe() == "no faults"
    flows = faults.effective_flows(0.0, 30.0, ["cav0", "cav1"])
    assert flows == {
        "cav0": pytest.approx(24.0),
        "cav1": pytest.approx(24.0),
    }


# ---------------------------------------------------------------------------
# sensor-layer integration
# ---------------------------------------------------------------------------


def test_installed_fault_masks_reading_but_not_ground_truth(
    liquid_model_coarse, uniform_core_powers
):
    sensors = TemperatureSensors(liquid_model_coarse)
    dead_ref = sensors.refs[0]
    sensors.install_fault(dead_ref, DeadSensorFault())
    field = liquid_model_coarse.steady_state(uniform_core_powers)

    readings = sensors.read(field, time=0.0)
    assert math.isnan(readings[dead_ref])
    truth = sensors.true_values(field)
    assert all(math.isfinite(value) for value in truth.values())

    hottest_ref, hottest = sensors.read_max(field, time=0.0)
    assert hottest_ref != dead_ref
    assert math.isfinite(hottest)

    with pytest.raises(KeyError):
        sensors.install_fault(("nowhere", "nothing"), DeadSensorFault())
    sensors.clear_faults()
    assert sensors.faulted_refs == []


# ---------------------------------------------------------------------------
# graceful controller degradation
# ---------------------------------------------------------------------------


def test_controller_partial_sensor_loss_fails_safe():
    controller = FuzzyThermalController()
    temps = {"c0": float("nan"), "c1": 330.0}
    utils = {"c0": 0.5, "c1": 0.5}
    flow, vf = controller.decide(0.0, temps, utils)
    assert flow == pytest.approx(float(controller.flow_grid[-1]))
    assert vf["c0"] == controller.vf_table.lowest_index
    assert controller.last_lost_sensors == ["c0"]


def test_controller_total_sensor_loss_fails_safe():
    controller = FuzzyThermalController()
    temps = {"c0": float("nan"), "c1": float("inf")}
    utils = {"c0": 0.9, "c1": 0.9}
    flow, vf = controller.decide(0.0, temps, utils)
    assert flow == pytest.approx(float(controller.flow_grid[-1]))
    assert set(vf) == {"c0", "c1"}
    assert all(
        index == controller.vf_table.lowest_index for index in vf.values()
    )


def test_controller_boosts_flow_after_shortfall():
    controller = FuzzyThermalController()
    temps = {"c0": 310.0, "c1": 311.0}  # ~37 degC: fuzzy commands low flow
    utils = {"c0": 0.3, "c1": 0.3}
    baseline, _ = controller.decide(0.0, temps, utils)
    assert baseline < float(controller.flow_grid[-1])

    # The loop delivered half the command: the next command is boosted.
    controller.observe_achieved_flow(baseline, 0.5 * baseline)
    boosted, _ = controller.decide(0.1, temps, utils)
    assert boosted > baseline

    # Delivery recovered: the boost is dropped again.
    controller.observe_achieved_flow(boosted, boosted)
    recovered, _ = controller.decide(0.2, temps, utils)
    assert recovered == pytest.approx(baseline)


# ---------------------------------------------------------------------------
# closed-loop simulation under faults
# ---------------------------------------------------------------------------


def test_simulator_runs_with_combined_faults(liquid_stack_2tier, short_trace):
    core = _core_refs(liquid_stack_2tier)[0]
    faults = FaultSet(
        sensor_faults={core: DeadSensorFault()},
        flow_faults=[PumpDegradationFault(remaining_fraction=0.7)],
        actuator_lag=ActuatorLagFault(periods=1),
    )
    simulator = SystemSimulator(
        liquid_stack_2tier,
        LiquidFuzzy(),
        short_trace,
        nx=12,
        ny=10,
        faults=faults,
        record_series=True,
    )
    result = simulator.run()
    assert math.isfinite(result.peak_temperature_c)
    assert result.mean_flow_ml_min > 0.0
    assert result.total_energy_j > 0.0
    assert np.all(np.isfinite(result.series["max_temperature_c"]))


def test_all_sensors_dead_forces_max_flow(liquid_stack_2tier, short_trace):
    cores = _core_refs(liquid_stack_2tier)
    faults = FaultSet(
        sensor_faults={core: DeadSensorFault() for core in cores}
    )
    simulator = SystemSimulator(
        liquid_stack_2tier,
        LiquidFuzzy(),
        short_trace,
        nx=12,
        ny=10,
        faults=faults,
    )
    result = simulator.run()
    assert result.mean_flow_ml_min == pytest.approx(
        constants.FLOW_RATE_MAX_ML_MIN
    )


def test_sensor_loss_keeps_peak_below_uncontrolled_baseline(
    liquid_stack_2tier,
):
    """Acceptance: the degraded fuzzy controller still beats no control.

    "No control" is the pump stuck at its minimum flow with no DVFS;
    the fuzzy policy runs blind (every sensor dead) under the same 30 %
    pump degradation and must stay cooler thanks to its max-flow
    fail-safe.
    """
    trace = make_constant_trace(0.9, intervals=3)
    cores = _core_refs(liquid_stack_2tier)
    pump_wear = PumpDegradationFault(remaining_fraction=0.7)

    blind = SystemSimulator(
        liquid_stack_2tier,
        LiquidFuzzy(),
        trace,
        nx=12,
        ny=10,
        faults=FaultSet(
            sensor_faults={core: DeadSensorFault() for core in cores},
            flow_faults=[pump_wear],
        ),
    ).run()
    uncontrolled = SystemSimulator(
        liquid_stack_2tier,
        LiquidLoadBalancing(flow_ml_min=constants.FLOW_RATE_MIN_ML_MIN),
        trace,
        nx=12,
        ny=10,
        faults=FaultSet(flow_faults=[pump_wear]),
    ).run()

    assert blind.peak_temperature_c < uncontrolled.peak_temperature_c


# ---------------------------------------------------------------------------
# fault campaigns
# ---------------------------------------------------------------------------


def test_campaign_dead_sensor_and_pump_degradation(liquid_stack_2tier):
    """Acceptance: the headline campaign completes end-to-end."""
    trace = make_constant_trace(0.8, intervals=3)
    core = _core_refs(liquid_stack_2tier)[0]
    scenarios = [
        FaultScenario(
            "dead-sensor+pump-30%",
            FaultSet(
                sensor_faults={core: DeadSensorFault()},
                flow_faults=[PumpDegradationFault(remaining_fraction=0.7)],
            ),
        ),
    ]
    report = run_fault_campaign(
        liquid_stack_2tier,
        LiquidFuzzy(),
        trace,
        scenarios,
        nx=12,
        ny=10,
    )
    assert report.complete
    outcome = report.outcomes[0]
    assert outcome.completed
    assert math.isfinite(outcome.peak_delta_c)
    assert math.isfinite(outcome.energy_delta_j)
    assert outcome.time_over_threshold_s >= 0.0
    rendered = str(report.table())
    assert "dead-sensor+pump-30%" in rendered


class _ExplodingFlowFault:
    """A fault whose application itself fails, to poison one scenario."""

    def apply(self, time, flows):
        raise RuntimeError("hydraulic model exploded")


def test_campaign_survives_a_failing_scenario(
    liquid_stack_2tier, short_trace
):
    core = _core_refs(liquid_stack_2tier)[0]
    scenarios = [
        FaultScenario(
            "healthy-scenario",
            FaultSet(sensor_faults={core: DeadSensorFault()}),
        ),
        FaultScenario(
            "broken-scenario",
            FaultSet(flow_faults=[_ExplodingFlowFault()]),
        ),
    ]
    report = run_fault_campaign(
        liquid_stack_2tier,
        LiquidFuzzy(),
        short_trace,
        scenarios,
        nx=12,
        ny=10,
        retries=0,
    )
    assert not report.complete
    by_name = {outcome.name: outcome for outcome in report.outcomes}
    assert by_name["healthy-scenario"].completed
    failure = by_name["broken-scenario"].failure
    assert failure is not None
    assert failure.phase == "exception"
    assert failure.error_type == "RuntimeError"
    assert "FAILED" in str(report.table())


def test_campaign_scenario_name_validation(liquid_stack_2tier, short_trace):
    with pytest.raises(ValueError):
        FaultScenario("__baseline__", FaultSet())
    duplicated = [
        FaultScenario("twin", FaultSet()),
        FaultScenario("twin", FaultSet()),
    ]
    with pytest.raises(ValueError):
        run_fault_campaign(
            liquid_stack_2tier,
            LiquidFuzzy(),
            short_trace,
            duplicated,
            nx=12,
            ny=10,
        )
