"""Floorplan geometry and rasterisation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.floorplan import (
    Block,
    Floorplan,
    grid_aligned,
    total_area_by_kind,
)


def make_two_block_plan():
    return Floorplan(
        width=2e-3,
        height=1e-3,
        blocks=[
            Block("left", 0.0, 0.0, 1e-3, 1e-3, kind="core"),
            Block("right", 1e-3, 0.0, 1e-3, 1e-3, kind="cache"),
        ],
    )


def test_block_area_and_bounds():
    b = Block("b", 1e-3, 2e-3, 3e-3, 4e-3)
    assert b.area == pytest.approx(12e-6)
    assert b.x2 == pytest.approx(4e-3)
    assert b.y2 == pytest.approx(6e-3)


def test_contains_is_half_open():
    b = Block("b", 0.0, 0.0, 1.0, 1.0)
    assert b.contains(0.0, 0.0)
    assert not b.contains(1.0, 0.5)
    assert not b.contains(0.5, 1.0)


def test_overlap_detection():
    a = Block("a", 0.0, 0.0, 2.0, 2.0)
    b = Block("b", 1.0, 1.0, 2.0, 2.0)
    c = Block("c", 2.0, 0.0, 1.0, 1.0)
    assert a.overlaps(b)
    assert not a.overlaps(c)  # touching edges do not overlap


def test_floorplan_rejects_overlapping_blocks():
    with pytest.raises(ValueError, match="overlap"):
        Floorplan(
            2.0,
            2.0,
            [Block("a", 0.0, 0.0, 1.5, 1.5), Block("b", 1.0, 1.0, 1.0, 1.0)],
        )


def test_floorplan_rejects_out_of_bounds_blocks():
    with pytest.raises(ValueError, match="outside"):
        Floorplan(1.0, 1.0, [Block("a", 0.5, 0.5, 1.0, 1.0)])


def test_floorplan_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        Floorplan(
            2.0,
            1.0,
            [Block("a", 0.0, 0.0, 1.0, 1.0), Block("a", 1.0, 0.0, 1.0, 1.0)],
        )


def test_rasterise_assigns_cells_to_owners():
    plan = make_two_block_plan()
    owner = plan.rasterise(4, 2)
    assert owner.shape == (2, 4)
    assert (owner[:, :2] == 0).all()
    assert (owner[:, 2:] == 1).all()


def test_rasterise_marks_unoccupied_cells():
    plan = Floorplan(2.0, 1.0, [Block("a", 0.0, 0.0, 1.0, 1.0)])
    owner = plan.rasterise(4, 2)
    assert (owner[:, 2:] == -1).all()


def test_cell_area_fractions_partition_cells():
    plan = make_two_block_plan()
    masks = plan.cell_area_fractions(8, 4)
    union = np.zeros((4, 8), dtype=int)
    for mask in masks.values():
        union += mask.astype(int)
    # Full coverage: every cell owned by exactly one block.
    assert (union == 1).all()


def test_coverage_and_area_accounting():
    plan = make_two_block_plan()
    assert plan.coverage() == pytest.approx(1.0)
    by_kind = total_area_by_kind(plan)
    assert by_kind["core"] == pytest.approx(1e-6)
    assert by_kind["cache"] == pytest.approx(1e-6)
    assert by_kind["other"] == 0.0


def test_block_lookup():
    plan = make_two_block_plan()
    assert plan.block("left").kind == "core"
    assert [b.name for b in plan.blocks_of_kind("cache")] == ["right"]
    with pytest.raises(KeyError):
        plan.block("missing")


def test_grid_aligned_snaps():
    assert grid_aligned(1.24e-3, 0.25e-3) == pytest.approx(1.25e-3)
    with pytest.raises(ValueError):
        grid_aligned(1.0, 0.0)


@given(
    nx=st.integers(2, 40),
    ny=st.integers(2, 40),
)
def test_rasterise_never_assigns_outside_blocks(nx, ny):
    plan = make_two_block_plan()
    owner = plan.rasterise(nx, ny)
    assert owner.min() >= 0  # fully covered plan: every centre owned
    assert owner.max() <= len(plan.blocks) - 1


def test_invalid_kind_rejected():
    with pytest.raises(ValueError, match="kind"):
        Block("x", 0.0, 0.0, 1.0, 1.0, kind="gpu")
