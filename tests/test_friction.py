"""Laminar rectangular-duct friction."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.stack import default_channel_geometry
from repro.hydraulics import (
    channel_pressure_drop,
    channel_hydraulic_resistance,
    pumping_power,
    shah_london_f_re,
)
from repro.materials import WATER
from repro.units import ml_per_min_to_m3_per_s, pa_to_bar


def test_shah_london_limits():
    # Parallel plates: fRe = 24; square duct: fRe ~ 14.23.
    assert shah_london_f_re(1e-9) == pytest.approx(24.0, rel=1e-6)
    assert shah_london_f_re(1.0) == pytest.approx(14.23, rel=0.01)


@given(st.floats(0.01, 1.0))
def test_shah_london_monotone_decreasing(a):
    assert shah_london_f_re(a) <= shah_london_f_re(a * 0.99) + 1e-12


def test_pressure_drop_linear_in_flow_without_minor_losses():
    g = default_channel_geometry()
    q = ml_per_min_to_m3_per_s(10.0)
    dp1 = channel_pressure_drop(g, q, WATER, include_minor_losses=False)
    dp2 = channel_pressure_drop(g, 2 * q, WATER, include_minor_losses=False)
    assert dp2 == pytest.approx(2 * dp1, rel=1e-9)


def test_minor_losses_add_quadratic_term():
    g = default_channel_geometry()
    q = ml_per_min_to_m3_per_s(32.3)
    with_minor = channel_pressure_drop(g, q, WATER, include_minor_losses=True)
    without = channel_pressure_drop(g, q, WATER, include_minor_losses=False)
    assert with_minor > without


def test_table_i_cavity_pressure_drop_order_of_magnitude():
    # At maximum flow the cavity drop is ~1 bar — same order as the
    # "less than 0.9 bar" quoted for the two-phase test sections.
    g = default_channel_geometry()
    q = ml_per_min_to_m3_per_s(32.3)
    dp_bar = pa_to_bar(channel_pressure_drop(g, q, WATER))
    assert 0.3 < dp_bar < 3.0


def test_hydraulic_resistance_consistent_with_pressure_drop():
    g = default_channel_geometry()
    r = channel_hydraulic_resistance(g, WATER)
    q = ml_per_min_to_m3_per_s(20.0)
    dp = channel_pressure_drop(g, q, WATER, include_minor_losses=False)
    assert r * q == pytest.approx(dp, rel=1e-9)


def test_zero_flow_zero_drop():
    g = default_channel_geometry()
    assert channel_pressure_drop(g, 0.0, WATER) == 0.0


def test_negative_flow_rejected():
    g = default_channel_geometry()
    with pytest.raises(ValueError):
        channel_pressure_drop(g, -1e-7, WATER)


def test_pumping_power_product():
    assert pumping_power(1e5, 5e-7) == pytest.approx(0.05)
    with pytest.raises(ValueError):
        pumping_power(-1.0, 1.0)


def test_narrower_channels_higher_resistance():
    from repro.geometry import MicroChannelGeometry

    narrow = MicroChannelGeometry(
        width=50e-6, height=100e-6, pitch=150e-6, length=1e-2, span=1e-2
    )
    wide = MicroChannelGeometry(
        width=100e-6, height=100e-6, pitch=150e-6, length=1e-2, span=1e-2
    )
    assert channel_hydraulic_resistance(narrow, WATER) > channel_hydraulic_resistance(
        wide, WATER
    )
