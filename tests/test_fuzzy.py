"""The Mamdani fuzzy-inference engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TriangularMF, FuzzyVariable, FuzzyRule, MamdaniController
from repro.core.fuzzy import three_level_variable


# ---------------------------------------------------------------------------
# membership functions
# ---------------------------------------------------------------------------


def test_triangle_membership():
    mf = TriangularMF(0.0, 0.5, 1.0)
    assert mf.membership(0.0) == 0.0
    assert mf.membership(0.25) == pytest.approx(0.5)
    assert mf.membership(0.5) == 1.0
    assert mf.membership(0.75) == pytest.approx(0.5)
    assert mf.membership(1.0) == 0.0


def test_left_shoulder():
    mf = TriangularMF(0.0, 0.0, 1.0)
    assert mf.membership(-5.0) == 1.0
    assert mf.membership(0.0) == 1.0
    assert mf.membership(0.5) == pytest.approx(0.5)
    assert mf.membership(1.0) == 0.0


def test_right_shoulder():
    mf = TriangularMF(0.0, 1.0, 1.0)
    assert mf.membership(2.0) == 1.0
    assert mf.membership(1.0) == 1.0
    assert mf.membership(0.5) == pytest.approx(0.5)


def test_membership_array_matches_scalar():
    mf = TriangularMF(0.0, 0.3, 1.0)
    xs = np.linspace(-0.2, 1.2, 29)
    array = mf.membership_array(xs)
    scalars = np.array([mf.membership(float(x)) for x in xs])
    assert np.allclose(array, scalars)


@given(st.floats(-2.0, 2.0))
def test_membership_in_unit_interval(x):
    mf = TriangularMF(-1.0, 0.0, 1.0)
    assert 0.0 <= mf.membership(x) <= 1.0


def test_degenerate_mf_rejected():
    with pytest.raises(ValueError):
        TriangularMF(1.0, 0.5, 0.0)
    with pytest.raises(ValueError):
        TriangularMF(1.0, 1.0, 1.0)


# ---------------------------------------------------------------------------
# variables and rules
# ---------------------------------------------------------------------------


def test_three_level_variable_partitions_range():
    var = three_level_variable("x", 0.0, 10.0)
    for x in np.linspace(0.0, 10.0, 21):
        total = sum(var.fuzzify(float(x)).values())
        assert total > 0.5  # overlapping cover, no dead zones


def test_fuzzify_clamps_out_of_range():
    var = three_level_variable("x", 0.0, 1.0)
    assert var.fuzzify(-1.0)["low"] == 1.0
    assert var.fuzzify(2.0)["high"] == 1.0


def test_rule_validation():
    with pytest.raises(ValueError):
        FuzzyRule({}, ("y", "low"))
    with pytest.raises(ValueError):
        FuzzyRule({"x": "low"}, ("y", "low"), weight=0.0)


# ---------------------------------------------------------------------------
# inference
# ---------------------------------------------------------------------------


def simple_controller():
    x = three_level_variable("x", 0.0, 1.0)
    y = three_level_variable("y", 0.0, 1.0)
    rules = [
        FuzzyRule({"x": "low"}, ("y", "low")),
        FuzzyRule({"x": "medium"}, ("y", "medium")),
        FuzzyRule({"x": "high"}, ("y", "high")),
    ]
    return MamdaniController([x], [y], rules)


def test_identity_like_mapping():
    c = simple_controller()
    assert c.infer({"x": 0.0})["y"] < 0.3
    assert c.infer({"x": 0.5})["y"] == pytest.approx(0.5, abs=0.05)
    assert c.infer({"x": 1.0})["y"] > 0.7


@given(st.floats(0.0, 1.0))
@settings(max_examples=50, deadline=None)
def test_output_always_within_range(x):
    c = simple_controller()
    assert 0.0 <= c.infer({"x": x})["y"] <= 1.0


@given(st.floats(0.0, 0.98))
@settings(max_examples=50, deadline=None)
def test_monotone_rule_base_gives_monotone_output(x):
    c = simple_controller()
    assert c.infer({"x": x + 0.02})["y"] >= c.infer({"x": x})["y"] - 1e-6


def test_multi_antecedent_min_and():
    x = three_level_variable("x", 0.0, 1.0)
    z = three_level_variable("z", 0.0, 1.0)
    y = three_level_variable("y", 0.0, 1.0)
    rules = [FuzzyRule({"x": "high", "z": "high"}, ("y", "high"))]
    c = MamdaniController([x, z], [y], rules)
    # One antecedent at zero membership: the rule does not fire and the
    # output falls back to the range midpoint.
    assert c.infer({"x": 1.0, "z": 0.0})["y"] == pytest.approx(0.5)
    assert c.infer({"x": 1.0, "z": 1.0})["y"] > 0.7


def test_rule_weight_damps_contribution():
    x = three_level_variable("x", 0.0, 1.0)
    y = three_level_variable("y", 0.0, 1.0)
    strong = MamdaniController(
        [x], [y], [FuzzyRule({"x": "high"}, ("y", "high"))]
    )
    weak = MamdaniController(
        [x],
        [y],
        [
            FuzzyRule({"x": "high"}, ("y", "high"), weight=0.2),
            FuzzyRule({"x": "high"}, ("y", "low"), weight=1.0),
        ],
    )
    assert weak.infer({"x": 1.0})["y"] < strong.infer({"x": 1.0})["y"]


def test_missing_input_rejected():
    c = simple_controller()
    with pytest.raises(KeyError):
        c.infer({})


def test_unknown_rule_references_rejected():
    x = three_level_variable("x", 0.0, 1.0)
    y = three_level_variable("y", 0.0, 1.0)
    with pytest.raises(KeyError):
        MamdaniController([x], [y], [FuzzyRule({"zz": "low"}, ("y", "low"))])
    with pytest.raises(KeyError):
        MamdaniController([x], [y], [FuzzyRule({"x": "huge"}, ("y", "low"))])
    with pytest.raises(KeyError):
        MamdaniController([x], [y], [FuzzyRule({"x": "low"}, ("y", "huge"))])


def test_empty_rule_base_rejected():
    x = three_level_variable("x", 0.0, 1.0)
    y = three_level_variable("y", 0.0, 1.0)
    with pytest.raises(ValueError):
        MamdaniController([x], [y], [])


# ---------------------------------------------------------------------------
# batched inference
# ---------------------------------------------------------------------------


def _speed_engine() -> MamdaniController:
    """The controller's speed rule base (two inputs, one output)."""
    from repro.core.controller import FuzzyThermalController

    return FuzzyThermalController()._speed_engine


def test_infer_many_matches_scalar_bitwise():
    """Batched inference must equal the per-point loop bit for bit."""
    engine = _speed_engine()
    rng = np.random.default_rng(11)
    # Random interior points plus every membership breakpoint, out-of-range
    # values (clamping) and dead zones (midpoint fallback).
    utilisation = np.concatenate(
        [rng.uniform(-0.3, 1.3, 40), [0.0, 0.25, 0.5, 0.75, 1.0, -1.0, 2.0]]
    )
    temperature = np.concatenate(
        [rng.uniform(20.0, 100.0, 40), [40.0, 56.0, 64.0, 67.0, 78.0, 80.0, 120.0]]
    )
    batch = engine.infer_many(
        {"utilisation": utilisation, "temperature": temperature}
    )["speed"]
    for k in range(utilisation.size):
        scalar = engine.infer(
            {
                "utilisation": float(utilisation[k]),
                "temperature": float(temperature[k]),
            }
        )["speed"]
        assert batch[k] == scalar


@given(
    x=st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
    y=st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_infer_many_scalar_property(x, y):
    engine = _speed_engine()
    batch = engine.infer_many(
        {"utilisation": np.array([x]), "temperature": np.array([y * 60.0 + 30.0])}
    )["speed"]
    scalar = engine.infer(
        {"utilisation": x, "temperature": y * 60.0 + 30.0}
    )["speed"]
    assert batch[0] == scalar


def test_infer_many_three_input_engine():
    """The flow rule base exercises rules with 1 and 2 antecedents."""
    from repro.core.controller import FuzzyThermalController

    engine = FuzzyThermalController()._flow_engine
    rng = np.random.default_rng(5)
    values = {
        "temperature": rng.uniform(35.0, 90.0, 32),
        "trend": rng.uniform(-2.0, 2.0, 32),
        "utilisation": rng.uniform(0.0, 1.0, 32),
    }
    batch = engine.infer_many(values)["flow"]
    for k in range(32):
        point = {name: float(vec[k]) for name, vec in values.items()}
        assert batch[k] == engine.infer(point)["flow"]


def test_infer_many_validates_inputs():
    engine = _speed_engine()
    with pytest.raises(KeyError):
        engine.infer_many({"utilisation": np.array([0.5])})
    with pytest.raises(ValueError):
        engine.infer_many(
            {
                "utilisation": np.array([0.5, 0.6]),
                "temperature": np.array([50.0]),
            }
        )
