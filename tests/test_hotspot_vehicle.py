"""The Fig. 8 hot-spot test vehicle."""

import numpy as np
import pytest

from repro import constants
from repro.twophase import HotSpotTestVehicle, FIG8_VEHICLE


@pytest.fixture(scope="module")
def profile():
    return FIG8_VEHICLE.sensor_rows(segments=100)


def test_heater_layout():
    flux = FIG8_VEHICLE.flux_profile(segments=100)
    assert flux[:40].max() == constants.EVAPORATOR_BACKGROUND_FLUX
    assert flux[40:60].min() == constants.EVAPORATOR_HOTSPOT_FLUX
    assert flux[60:].max() == constants.EVAPORATOR_BACKGROUND_FLUX


def test_flux_contrast_is_15x():
    ratio = constants.EVAPORATOR_HOTSPOT_FLUX / constants.EVAPORATOR_BACKGROUND_FLUX
    assert ratio == pytest.approx(15.1)


def test_fluid_temperatures_match_fig8(profile):
    # "the refrigerant enters at a saturation temperature of 30 degC and
    # leaves with a temperature of 29.5 degC"
    assert profile.fluid_c[0] == pytest.approx(30.0, abs=0.1)
    assert profile.fluid_c[-1] == pytest.approx(29.5, abs=0.2)


def test_fluid_temperature_decreases_along_rows(profile):
    assert all(b < a for a, b in zip(profile.fluid_c, profile.fluid_c[1:]))


def test_htc_boost_under_hot_spot(profile):
    # "the local heat transfer coefficient under the hot spot is 8 times
    # higher"
    ratio = profile.hotspot_to_background_htc_ratio()
    assert 6.0 < ratio < 10.0


def test_superheat_only_doubles(profile):
    # "the wall superheat ... is only 2 times higher under the hot spot
    # rather than 15 times with water cooling"
    ratio = profile.superheat_ratio()
    assert 1.5 < ratio < 2.5


def test_wall_peak_under_hot_spot(profile):
    assert profile.wall_c.argmax() == 2


def test_base_above_wall_everywhere(profile):
    assert np.all(profile.base_c > profile.wall_c)


def test_water_cooling_would_scale_superheat_linearly():
    """The contrast the paper draws: a flux-independent single-phase HTC
    scales the superheat by the full 15.1x flux ratio."""
    flux_ratio = (
        constants.EVAPORATOR_HOTSPOT_FLUX / constants.EVAPORATOR_BACKGROUND_FLUX
    )
    two_phase = FIG8_VEHICLE.sensor_rows().superheat_ratio()
    assert two_phase < flux_ratio / 5.0


def test_comparison_summary():
    summary = FIG8_VEHICLE.comparison_with_paper()
    assert set(summary) == {
        "htc_ratio",
        "superheat_ratio",
        "inlet_fluid_c",
        "outlet_fluid_c",
    }


def test_segments_must_align_with_rows():
    with pytest.raises(ValueError):
        FIG8_VEHICLE.flux_profile(segments=33)


def test_vehicle_validation():
    with pytest.raises(ValueError):
        HotSpotTestVehicle(background_flux=1e5, hotspot_flux=1e4)
    with pytest.raises(ValueError):
        HotSpotTestVehicle(rows=2)
