"""JIT assembly dispatch: bitwise numpy/numba equivalence, env gating."""

import numpy as np
import pytest

from repro.geometry import CoolingMode, build_3d_mpsoc
from repro.obs.metrics import get_registry
from repro.thermal import CompactThermalModel
from repro.thermal.assembly import ConductanceBuilder
from repro.thermal.jit import (
    JIT_ENV,
    _accumulate_diagonal_loop,
    _gather_nonzero_loop,
    accumulate_diagonal,
    gather_nonzero,
    have_numba,
    jit_enabled,
)


def test_accumulate_diagonal_matches_the_loop_reference_bitwise():
    rng = np.random.default_rng(7)
    indices = rng.integers(0, 257, size=10_000).astype(np.int32)
    weights = rng.normal(scale=1e3, size=10_000)
    fast = accumulate_diagonal(indices, weights, 257)
    reference = _accumulate_diagonal_loop(indices, weights, 257)
    assert np.array_equal(fast, reference)  # bitwise, not allclose


def test_gather_nonzero_matches_the_loop_reference_bitwise():
    rng = np.random.default_rng(8)
    values = np.where(rng.random(500) < 0.4, 0.0, rng.normal(size=500))
    idx, vals = gather_nonzero(values)
    ref_idx, ref_vals = _gather_nonzero_loop(values)
    assert np.array_equal(idx, ref_idx)
    assert np.array_equal(vals, ref_vals)
    assert idx.dtype == np.int32


def test_empty_and_all_zero_inputs():
    out = accumulate_diagonal(
        np.zeros(0, np.int32), np.zeros(0), 4
    )
    assert np.array_equal(out, np.zeros(4))
    idx, vals = gather_nonzero(np.zeros(6))
    assert idx.size == 0 and vals.size == 0


def test_env_kill_switch_forces_numpy(monkeypatch):
    monkeypatch.setenv(JIT_ENV, "0")
    assert not jit_enabled()
    registry = get_registry()
    start = registry.snapshot()
    accumulate_diagonal(np.zeros(1, np.int32), np.ones(1), 1)
    delta = registry.delta_since(start)
    assert delta["assembly.jit.numpy_calls"]["value"] == 1
    assert "assembly.jit.numba_calls" not in delta


def test_jit_enabled_tracks_numba_availability(monkeypatch):
    monkeypatch.delenv(JIT_ENV, raising=False)
    assert jit_enabled() == have_numba()


def test_dispatch_is_counted():
    registry = get_registry()
    start = registry.snapshot()
    gather_nonzero(np.ones(3))
    delta = registry.delta_since(start)
    path = "numba" if jit_enabled() else "numpy"
    assert delta[f"assembly.jit.{path}_calls"]["value"] == 1


def test_assembled_matrix_identical_with_jit_disabled(monkeypatch):
    """The env kill switch must not change a single bit of the model.

    Assembles the same stack twice — dispatch enabled (whatever this
    environment resolves to) and forced off — and compares the system
    matrices exactly.
    """
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    enabled = CompactThermalModel(stack, nx=10, ny=8).system_matrix()
    monkeypatch.setenv(JIT_ENV, "0")
    disabled = CompactThermalModel(stack, nx=10, ny=8).system_matrix()
    assert enabled.shape == disabled.shape
    assert enabled.nnz == disabled.nnz
    assert np.array_equal(enabled.indptr, disabled.indptr)
    assert np.array_equal(enabled.indices, disabled.indices)
    assert np.array_equal(enabled.data, disabled.data)


def test_builder_uses_the_dispatch_layer():
    registry = get_registry()
    builder = ConductanceBuilder(6)
    builder.add_edges(
        np.array([0, 1, 2]), np.array([3, 4, 5]), 2.0
    )
    builder.add_diagonal(np.array([0, 5]), 1.5)
    start = registry.snapshot()
    matrix = builder.to_csr()
    delta = registry.delta_since(start)
    path = "numba" if jit_enabled() else "numpy"
    # to_csr runs one diagonal accumulation and one nonzero gather.
    assert delta[f"assembly.jit.{path}_calls"]["value"] == 2
    assert matrix.diagonal()[0] == pytest.approx(3.5)


@pytest.mark.skipif(not have_numba(), reason="numba not installed")
def test_numba_path_matches_numpy_bitwise(monkeypatch):
    """With numba present both dispatch targets must agree exactly."""
    rng = np.random.default_rng(9)
    indices = rng.integers(0, 1000, size=50_000).astype(np.int32)
    weights = rng.normal(scale=37.0, size=50_000)
    monkeypatch.delenv(JIT_ENV, raising=False)
    jit_diag = accumulate_diagonal(indices, weights, 1000)
    jit_gather = gather_nonzero(jit_diag)
    monkeypatch.setenv(JIT_ENV, "0")
    np_diag = accumulate_diagonal(indices, weights, 1000)
    np_gather = gather_nonzero(np_diag)
    assert np.array_equal(jit_diag, np_diag)
    assert np.array_equal(jit_gather[0], np_gather[0])
    assert np.array_equal(jit_gather[1], np_gather[1])
