"""The iterative (ILU + BiCGSTAB) solver path against the direct LU."""

import numpy as np
import pytest

from repro.geometry import build_3d_mpsoc
from repro.thermal import CompactThermalModel, TransientStepper
from repro.thermal.krylov import (
    DIRECT_NODE_LIMIT,
    KrylovOptions,
    choose_backend,
    direct_node_limit,
)


def _powers(model, seed=7):
    rng = np.random.default_rng(seed)
    return {
        ref: float(p)
        for ref, p in zip(
            model.block_order,
            rng.uniform(0.5, 4.0, len(model.block_order)),
        )
    }


def test_choose_backend_auto_threshold(monkeypatch):
    monkeypatch.delenv("REPRO_DIRECT_NODE_LIMIT", raising=False)
    monkeypatch.delenv("REPRO_AMG_NODE_LIMIT", raising=False)
    assert choose_backend("auto", DIRECT_NODE_LIMIT) == "direct"
    # AMG_NODE_LIMIT defaults to DIRECT_NODE_LIMIT, so auto jumps
    # straight to the raw-speed tier above the direct limit.
    assert choose_backend("auto", DIRECT_NODE_LIMIT + 1) == "amg"
    # Explicit requests are never overridden by the size heuristic.
    assert choose_backend("direct", 10**9) == "direct"
    assert choose_backend("iterative", 10) == "iterative"
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "100")
    assert direct_node_limit() == 100
    # Lowering only the direct limit re-opens the ILU window up to the
    # (still default) AMG limit.
    assert choose_backend("auto", 101) == "iterative"
    # A malformed override falls back to the compiled-in limit.
    monkeypatch.setenv("REPRO_DIRECT_NODE_LIMIT", "junk")
    assert direct_node_limit() == DIRECT_NODE_LIMIT


def test_choose_backend_rejects_unknown():
    with pytest.raises(ValueError):
        choose_backend("quantum", 100)
    with pytest.raises(ValueError):
        CompactThermalModel(build_3d_mpsoc(2), nx=6, ny=5, solver="quantum")


@pytest.mark.parametrize("tiers", [2, 4])
def test_steady_iterative_matches_direct(tiers):
    stack = build_3d_mpsoc(tiers)
    direct = CompactThermalModel(stack, nx=12, ny=10, solver="direct")
    iterative = CompactThermalModel(stack, nx=12, ny=10, solver="iterative")
    powers = _powers(direct)
    for flow in (None, 30.0):
        reference = direct.steady_state(powers, flow)
        solved = iterative.steady_state(powers, flow)
        assert np.allclose(
            solved.values, reference.values, rtol=1e-8, atol=0.0
        )
    assert iterative.steady_stats.iterative_solves == 2
    assert iterative.steady_stats.fallbacks_to_direct == 0
    assert iterative.steady_stats.krylov_iterations > 0


def test_steady_warm_start_cuts_iterations():
    model = CompactThermalModel(
        build_3d_mpsoc(2), nx=12, ny=10, solver="iterative"
    )
    powers = _powers(model)
    model.steady_state(powers)
    cold = model.steady_stats.krylov_iterations
    # A nearby problem at the same flow warm-starts from the previous
    # solution and must converge in fewer sweeps than the cold solve.
    model.steady_state({ref: p * 1.01 for ref, p in powers.items()})
    warm = model.steady_stats.krylov_iterations - cold
    assert 0 <= warm < cold


@pytest.mark.parametrize("tiers", [2, 4])
def test_transient_iterative_matches_direct(tiers):
    model = CompactThermalModel(build_3d_mpsoc(tiers), nx=12, ny=10)
    powers = _powers(model)
    initial = model.steady_state(powers)
    packed = model.pack_powers(
        {ref: p * 1.3 for ref, p in powers.items()}
    )
    direct = TransientStepper(model, 0.1, initial, solver="direct")
    iterative = TransientStepper(model, 0.1, initial, solver="iterative")
    for _ in range(5):
        direct.step_packed(packed)
        iterative.step_packed(packed)
    assert np.allclose(
        iterative.state.values, direct.state.values, rtol=1e-8, atol=0.0
    )
    assert iterative.time == direct.time
    assert iterative.stats.iterative_solves == 5
    assert iterative.stats.fallbacks_to_direct == 0


def test_steady_nonconvergence_falls_back_to_direct():
    stack = build_3d_mpsoc(2)
    reference = CompactThermalModel(stack, nx=12, ny=10, solver="direct")
    starved = CompactThermalModel(
        stack,
        nx=12,
        ny=10,
        solver="iterative",
        krylov=KrylovOptions(maxiter=1, rtol=1e-14),
    )
    powers = _powers(reference)
    solved = starved.steady_state(powers)
    # One BiCGSTAB sweep cannot reach rtol=1e-14 from a cold start, so
    # the solve must have been handed to the guarded LU — and the LU
    # fallback factorises the same matrix with the same options, so the
    # result is bitwise the direct answer.
    assert starved.steady_stats.fallbacks_to_direct == 1
    assert starved.steady_stats.iterative_solves == 0
    assert np.array_equal(
        solved.values, reference.steady_state(powers).values
    )


def test_transient_nonconvergence_falls_back_to_direct():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    powers = _powers(model)
    initial = model.steady_state(powers)
    packed = model.pack_powers({ref: p * 2.0 for ref, p in powers.items()})
    reference = TransientStepper(model, 0.1, initial, solver="direct")
    starved = TransientStepper(
        model,
        0.1,
        initial,
        solver="iterative",
        krylov=KrylovOptions(maxiter=1, rtol=1e-16, atol=0.0),
    )
    reference.step_packed(packed)
    starved.step_packed(packed)
    assert starved.stats.fallbacks_to_direct >= 1
    assert np.array_equal(starved.state.values, reference.state.values)
