"""Temperature-dependent leakage."""

import math

import pytest

from repro.power import LeakageModel
from repro.power.leakage import CORE_LEAKAGE
from repro.units import celsius_to_kelvin


def test_reference_point_value():
    # 10 mm^2 core leaks 0.8 W at the 85 degC reference.
    assert CORE_LEAKAGE.power(10e-6, celsius_to_kelvin(85.0)) == pytest.approx(0.8)


def test_exponential_temperature_dependence():
    model = LeakageModel(density_at_ref=1e4, beta=0.015)
    t0 = celsius_to_kelvin(85.0)
    ratio = model.power(1e-6, t0 + 20.0) / model.power(1e-6, t0)
    assert ratio == pytest.approx(math.exp(0.015 * 20.0))


def test_leakage_scales_with_area():
    model = LeakageModel(density_at_ref=1e4)
    t = celsius_to_kelvin(70.0)
    assert model.power(2e-6, t) == pytest.approx(2 * model.power(1e-6, t))


def test_voltage_scaling():
    t = celsius_to_kelvin(85.0)
    full = CORE_LEAKAGE.power(10e-6, t, voltage_scale=1.0)
    scaled = CORE_LEAKAGE.power(10e-6, t, voltage_scale=0.75)
    assert scaled == pytest.approx(0.75 * full)


def test_saturation_prevents_runaway():
    """Above the clamp the leakage stops growing — this is what keeps the
    4-tier air-cooled runaway case (Section IV-A, 178 degC) bounded."""
    t_clamp = CORE_LEAKAGE.saturation_k
    at_clamp = CORE_LEAKAGE.power(10e-6, t_clamp)
    way_above = CORE_LEAKAGE.power(10e-6, t_clamp + 100.0)
    assert way_above == pytest.approx(at_clamp)


def test_leakage_fraction_reasonable_at_threshold():
    # ~15 % of a ~5 W core at the 85 degC threshold (90 nm budget).
    leak = CORE_LEAKAGE.power(10e-6, celsius_to_kelvin(85.0))
    assert 0.1 < leak / 5.0 < 0.25


def test_validation():
    with pytest.raises(ValueError):
        LeakageModel(density_at_ref=-1.0)
    with pytest.raises(ValueError):
        CORE_LEAKAGE.power(-1.0, 300.0)
    with pytest.raises(ValueError):
        CORE_LEAKAGE.power(1e-6, 300.0, voltage_scale=0.0)
    with pytest.raises(ValueError):
        CORE_LEAKAGE.power(1e-6, -5.0)
