"""Dynamic load balancing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import LoadBalancer


def test_initial_assignment_round_robin():
    lb = LoadBalancer(cores=4, threads=8)
    assert list(lb.assignment) == [0, 1, 2, 3, 0, 1, 2, 3]


def test_queue_lengths_sum_demands():
    lb = LoadBalancer(cores=2, threads=4)
    queues = lb.queue_lengths([0.5, 0.25, 0.5, 0.25])
    assert queues[0] == pytest.approx(1.0)
    assert queues[1] == pytest.approx(0.5)


def test_rebalance_moves_load_from_hot_core():
    lb = LoadBalancer(cores=2, threads=4, threshold=0.1)
    # All demand initially lands on core 0's threads.
    demands = [0.9, 0.0, 0.9, 0.0]
    lb.rebalance(demands)
    queues = lb.queue_lengths(demands)
    assert abs(queues[0] - queues[1]) <= 0.1 + 1e-9


def test_rebalance_is_noop_when_balanced():
    lb = LoadBalancer(cores=2, threads=4, threshold=0.5)
    assignment_before = lb.assignment.copy()
    lb.rebalance([0.3, 0.3, 0.3, 0.3])
    assert np.array_equal(lb.assignment, assignment_before)
    assert lb.migrations == 0


def test_migration_counter_increments():
    lb = LoadBalancer(cores=2, threads=4, threshold=0.1)
    lb.rebalance([0.9, 0.0, 0.9, 0.0])
    assert lb.migrations > 0


def test_core_demands_after_balancing():
    lb = LoadBalancer(cores=4, threads=8, threshold=0.05)
    demands = np.array([0.8, 0.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
    core_demand = lb.core_demands(demands)
    assert core_demand.sum() == pytest.approx(demands.sum())
    assert core_demand.max() - core_demand.min() <= 0.8 + 1e-9


@given(
    demands=st.lists(st.floats(0.0, 1.0), min_size=8, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_rebalancing_conserves_total_demand(demands):
    lb = LoadBalancer(cores=4, threads=8, threshold=0.2)
    before = lb.queue_lengths(demands).sum()
    lb.rebalance(demands)
    after = lb.queue_lengths(demands).sum()
    assert after == pytest.approx(before)


@given(
    demands=st.lists(st.floats(0.0, 1.0), min_size=12, max_size=12),
)
@settings(max_examples=50, deadline=None)
def test_rebalancing_never_increases_imbalance(demands):
    lb = LoadBalancer(cores=3, threads=12, threshold=0.1)
    before = np.ptp(lb.queue_lengths(demands))
    lb.rebalance(demands)
    after = np.ptp(lb.queue_lengths(demands))
    assert after <= before + 1e-9


def test_wrong_demand_count_rejected():
    lb = LoadBalancer(cores=2, threads=4)
    with pytest.raises(ValueError):
        lb.queue_lengths([0.5, 0.5])
    with pytest.raises(ValueError):
        lb.queue_lengths([-0.1, 0.0, 0.0, 0.0])


def test_constructor_validation():
    with pytest.raises(ValueError):
        LoadBalancer(cores=0, threads=4)
    with pytest.raises(ValueError):
        LoadBalancer(cores=2, threads=4, threshold=0.0)
