"""Liquid coolant properties."""

import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.materials import WATER, Liquid
from repro.materials.fluids import log_mean_temperature_difference
from repro.units import ml_per_min_to_m3_per_s


def test_table_i_water_values():
    assert WATER.conductivity == constants.WATER_CONDUCTIVITY
    assert WATER.specific_heat == constants.WATER_SPECIFIC_HEAT


def test_capacity_rate_at_max_flow():
    # 32.3 ml/min of water: mdot cp = 0.0323e-3/60 * 997 * 4183 ~ 2.25 W/K.
    q = ml_per_min_to_m3_per_s(constants.FLOW_RATE_MAX_ML_MIN)
    assert WATER.heat_capacity_rate(q) == pytest.approx(2.245, rel=0.01)


def test_prandtl_number_near_room_temperature():
    # Water Pr ~ 6 at ~25 degC.
    assert 4.0 < WATER.prandtl() < 8.0


def test_viscosity_decreases_with_temperature():
    assert WATER.viscosity_at(330.0) < WATER.viscosity_at(300.0)


@given(st.floats(280.0, 370.0))
def test_viscosity_positive_over_liquid_range(t):
    assert WATER.viscosity_at(t) > 0.0


def test_viscosity_reference_point():
    # The Vogel law is normalised at 20 degC.
    assert WATER.viscosity_at(293.15) == pytest.approx(WATER.viscosity, rel=1e-6)


def test_negative_flow_rejected():
    with pytest.raises(ValueError):
        WATER.heat_capacity_rate(-1.0)


@pytest.mark.parametrize(
    "field", ["density", "specific_heat", "conductivity", "viscosity"]
)
def test_invalid_liquid_rejected(field):
    kwargs = dict(
        name="bad", density=1.0, specific_heat=1.0, conductivity=1.0, viscosity=1.0
    )
    kwargs[field] = 0.0
    with pytest.raises(ValueError):
        Liquid(**kwargs)


def test_lmtd_symmetric_limit():
    # Equal end differences: LMTD equals that difference.
    assert log_mean_temperature_difference(80.0, 60.0, 20.0, 40.0) == pytest.approx(
        40.0
    )


def test_lmtd_classic_value():
    # Counterflow with 60/20 K end differences: LMTD = 40/ln(3) ~ 36.41 K.
    import math

    lmtd = log_mean_temperature_difference(100.0, 50.0, 30.0, 40.0)
    assert lmtd == pytest.approx(40.0 / math.log(3.0), rel=1e-9)


def test_lmtd_rejects_crossing_streams():
    with pytest.raises(ValueError):
        log_mean_temperature_difference(50.0, 30.0, 40.0, 60.0)
