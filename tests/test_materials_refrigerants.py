"""Refrigerant saturation-property correlations."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.materials import R134A, R236FA, R245FA, REFRIGERANTS
from repro.materials.refrigerants import fit_antoine
from repro.units import celsius_to_kelvin


@pytest.mark.parametrize("refrigerant", list(REFRIGERANTS.values()))
def test_antoine_fit_passes_through_anchors(refrigerant):
    for t, p_bar in refrigerant.saturation_anchors:
        assert refrigerant.saturation_pressure(t) == pytest.approx(
            p_bar * 1e5, rel=1e-6
        )


@pytest.mark.parametrize("refrigerant", list(REFRIGERANTS.values()))
def test_normal_boiling_point_recovered(refrigerant):
    # First anchor of every refrigerant is the normal boiling point.
    t_nbp = refrigerant.saturation_anchors[0][0]
    assert refrigerant.saturation_temperature(1.013e5) == pytest.approx(
        t_nbp, abs=0.05
    )


def test_r134a_saturation_at_30c_matches_published_data():
    # Published: Psat(30 degC) of R134a ~ 7.70 bar.
    p = R134A.saturation_pressure(celsius_to_kelvin(30.0))
    assert p == pytest.approx(7.70e5, rel=0.02)


def test_r245fa_saturation_at_30c_matches_published_data():
    # Published: Psat(30 degC) of R245fa ~ 1.78 bar.
    p = R245FA.saturation_pressure(celsius_to_kelvin(30.0))
    assert p == pytest.approx(1.78e5, rel=0.03)


@pytest.mark.parametrize("refrigerant", list(REFRIGERANTS.values()))
@given(t=st.floats(270.0, 350.0))
def test_saturation_roundtrip(refrigerant, t):
    p = refrigerant.saturation_pressure(t)
    assert refrigerant.saturation_temperature(p) == pytest.approx(t, abs=1e-6)


@pytest.mark.parametrize("refrigerant", list(REFRIGERANTS.values()))
def test_saturation_pressure_strictly_increasing(refrigerant):
    temps = [270.0 + 2.0 * i for i in range(40)]
    pressures = [refrigerant.saturation_pressure(t) for t in temps]
    assert all(b > a for a, b in zip(pressures, pressures[1:]))


@pytest.mark.parametrize("refrigerant", list(REFRIGERANTS.values()))
def test_clausius_slope_consistent_with_finite_difference(refrigerant):
    t = 303.15
    dt = 0.01
    numeric = (
        refrigerant.saturation_pressure(t + dt)
        - refrigerant.saturation_pressure(t - dt)
    ) / (2 * dt)
    assert refrigerant.dpsat_dt(t) == pytest.approx(numeric, rel=1e-4)
    assert refrigerant.dtsat_dp(t) == pytest.approx(1.0 / numeric, rel=1e-4)


def test_latent_heat_order_of_magnitude_matches_paper():
    # Section III: "about 150 kJ/kg of R-134a".
    assert R134A.latent_heat(303.15) == pytest.approx(173e3, rel=0.05)
    assert 120e3 < R236FA.latent_heat(303.15) < 200e3


@pytest.mark.parametrize("refrigerant", list(REFRIGERANTS.values()))
def test_latent_heat_vanishes_at_critical_point(refrigerant):
    near_critical = refrigerant.critical_temperature - 0.5
    far = refrigerant.reference_temperature
    assert refrigerant.latent_heat(near_critical) < 0.2 * refrigerant.latent_heat(far)


@pytest.mark.parametrize("refrigerant", list(REFRIGERANTS.values()))
def test_vapour_density_below_liquid_density(refrigerant):
    t = 303.15
    assert 0.0 < refrigerant.vapour_density(t) < refrigerant.liquid_density


def test_reduced_pressure_in_valid_range_for_cooper():
    pr = R245FA.reduced_pressure(303.15)
    assert 0.01 < pr < 0.5


def test_fit_antoine_rejects_bad_input():
    with pytest.raises(ValueError):
        fit_antoine(((300.0, 1.0), (290.0, 2.0), (310.0, 3.0)))
    with pytest.raises(ValueError):
        fit_antoine(((300.0, 1.0), (310.0, 2.0)))


def test_out_of_range_temperature_rejected():
    with pytest.raises(ValueError):
        R134A.saturation_pressure(R134A.critical_temperature + 1.0)
    with pytest.raises(ValueError):
        R134A.latent_heat(0.0)
