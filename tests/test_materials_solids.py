"""Solid material properties and helpers."""

import pytest

from repro import constants
from repro.materials import SILICON, WIRING, COPPER, PYREX, SolidMaterial


def test_table_i_silicon_values():
    assert SILICON.conductivity == constants.SILICON_CONDUCTIVITY
    assert SILICON.vol_heat_capacity == constants.SILICON_VOL_HEAT_CAPACITY


def test_table_i_wiring_values():
    assert WIRING.conductivity == pytest.approx(2.25)
    assert WIRING.vol_heat_capacity == pytest.approx(2_174_502.0)


def test_conductance_of_slab():
    # 1 cm^2, 1 mm silicon slab: G = k A / t = 130 * 1e-4 / 1e-3 = 13 W/K.
    assert SILICON.conductance(1e-4, 1e-3) == pytest.approx(13.0)


def test_capacitance_of_volume():
    volume = 115e-6 * 0.15e-3  # one Table I die
    expected = constants.SILICON_VOL_HEAT_CAPACITY * volume
    assert SILICON.capacitance(volume) == pytest.approx(expected)


def test_material_ordering_sanity():
    # Copper conducts best, pyrex worst, among the packaged materials.
    assert COPPER.conductivity > SILICON.conductivity > WIRING.conductivity
    assert WIRING.conductivity > PYREX.conductivity


@pytest.mark.parametrize("field", ["conductivity", "vol_heat_capacity"])
def test_invalid_properties_rejected(field):
    kwargs = {"name": "bad", "conductivity": 1.0, "vol_heat_capacity": 1.0}
    kwargs[field] = -1.0
    with pytest.raises(ValueError):
        SolidMaterial(**kwargs)


@pytest.mark.parametrize("area,length", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
def test_conductance_validates_geometry(area, length):
    with pytest.raises(ValueError):
        SILICON.conductance(area, length)


def test_capacitance_rejects_nonpositive_volume():
    with pytest.raises(ValueError):
        SILICON.capacitance(0.0)
