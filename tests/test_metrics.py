"""Performance-degradation accounting."""

import numpy as np
import pytest

from repro.sched import PerformanceTracker


def test_no_throttling_no_degradation():
    tracker = PerformanceTracker(cores=2)
    for _ in range(10):
        tracker.record([0.8, 0.6], [1.0, 1.0], dt=1.0)
    assert tracker.degradation_percent() == 0.0
    assert tracker.completion_fraction() == pytest.approx(1.0)


def test_throttled_core_accumulates_backlog():
    tracker = PerformanceTracker(cores=1)
    tracker.record([0.9], [0.5], dt=1.0)
    # Demand 0.9 core-s, capacity 0.5: 0.4 queued.
    assert tracker.remaining_backlog == pytest.approx(0.4)


def test_backlog_drains_when_capacity_returns():
    tracker = PerformanceTracker(cores=1)
    tracker.record([0.9], [0.5], dt=1.0)
    tracker.record([0.2], [1.0], dt=1.0)
    # 0.4 backlog + 0.2 new demand fits in 1.0 capacity.
    assert tracker.remaining_backlog == pytest.approx(0.0)
    assert tracker.degradation_percent() == 0.0


def test_degradation_percent_definition():
    tracker = PerformanceTracker(cores=2)
    for _ in range(10):
        tracker.record([1.0, 1.0], [0.8, 0.8], dt=1.0)
    # Each core queues 0.2/s for 10 s: 4 core-s total over 2 cores and
    # 10 s: 100 * (4/2)/10 = 20 %.
    assert tracker.degradation_percent() == pytest.approx(20.0)


def test_executed_capped_by_capacity():
    tracker = PerformanceTracker(cores=1)
    executed = tracker.record([2.0], [1.0], dt=1.0)
    assert executed[0] == pytest.approx(1.0)


def test_completion_fraction_under_saturation():
    tracker = PerformanceTracker(cores=1)
    tracker.record([2.0], [1.0], dt=1.0)
    assert tracker.completion_fraction() == pytest.approx(0.5)


def test_validation():
    tracker = PerformanceTracker(cores=2)
    with pytest.raises(ValueError):
        tracker.record([0.5], [1.0, 1.0], dt=1.0)
    with pytest.raises(ValueError):
        tracker.record([0.5, 0.5], [1.0, 1.5], dt=1.0)
    with pytest.raises(ValueError):
        tracker.record([0.5, 0.5], [1.0, 0.0], dt=1.0)
    with pytest.raises(ValueError):
        tracker.record([-0.5, 0.5], [1.0, 1.0], dt=1.0)
    with pytest.raises(ValueError):
        tracker.record([0.5, 0.5], [1.0, 1.0], dt=0.0)
    with pytest.raises(ValueError):
        PerformanceTracker(cores=0)


def test_empty_tracker_neutral():
    tracker = PerformanceTracker(cores=4)
    assert tracker.degradation_percent() == 0.0
    assert tracker.completion_fraction() == 1.0
