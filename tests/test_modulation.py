"""Width-modulated cavity design (Section II-C)."""

import pytest

from repro.hydraulics import (
    ChannelSegment,
    ModulatedCavity,
    design_modulated_cavity,
    uniform_worst_case_cavity,
)
from repro.units import celsius_to_kelvin

PITCH = 150e-6
HEIGHT = 100e-6
WIDTHS = (100e-6, 75e-6, 50e-6)
INLET = celsius_to_kelvin(27.0)
LIMIT = celsius_to_kelvin(85.0)
FLOW_BOUNDS = (1e-9, 3e-8)  # per channel


def hotspot_profile(hot_flux=1.5e6, background=1.0e5):
    """10 segments of 1 mm; segments 6-7 carry the hot spot."""
    profile = []
    for i in range(10):
        flux = hot_flux if i in (6, 7) else background
        profile.append((1e-3, flux))
    return profile


def test_uniform_design_picks_single_width():
    cavity, flow = uniform_worst_case_cavity(
        hotspot_profile(),
        LIMIT,
        widths=WIDTHS,
        pitch=PITCH,
        height=HEIGHT,
        inlet_temperature=INLET,
        flow_bounds=FLOW_BOUNDS,
    )
    widths = {seg.width for seg in cavity.segments}
    assert len(widths) == 1
    assert cavity.max_junction(hotspot_profile(), flow, INLET) <= LIMIT + 1e-6


def test_modulated_design_narrows_only_hot_segments():
    cavity, flow = design_modulated_cavity(
        hotspot_profile(),
        LIMIT,
        widths=WIDTHS,
        pitch=PITCH,
        height=HEIGHT,
        inlet_temperature=INLET,
        flow_bounds=FLOW_BOUNDS,
    )
    hot_widths = [cavity.segments[i].width for i in (6, 7)]
    cold_widths = [cavity.segments[i].width for i in (0, 1, 2)]
    assert min(cold_widths) >= max(hot_widths)
    assert cavity.max_junction(hotspot_profile(), flow, INLET) <= LIMIT + 1e-6


DESIGN_KWARGS = dict(
    widths=WIDTHS,
    pitch=PITCH,
    height=HEIGHT,
    inlet_temperature=INLET,
    flow_bounds=FLOW_BOUNDS,
)


def test_modulated_design_halves_pressure_drop_vs_uniform_narrow():
    """Section II-C: ~2x pressure-drop improvement from width modulation.

    At a hot-spot flux that forces the uniform design to the narrowest
    width everywhere, the modulated design needs it only locally.
    """
    profile = hotspot_profile(hot_flux=1.8e6)
    uniform, q_u = uniform_worst_case_cavity(profile, LIMIT, **DESIGN_KWARGS)
    modulated, q_m = design_modulated_cavity(profile, LIMIT, **DESIGN_KWARGS)
    assert uniform.segments[0].width == pytest.approx(50e-6)
    flow = max(q_u, q_m)
    ratio = uniform.pressure_drop(flow) / modulated.pressure_drop(flow)
    assert 1.5 < ratio < 3.0


def test_modulated_design_cuts_pumping_power_severalfold():
    """Section II-C: ~5x pumping-power improvement.

    At a flux the mid width can only handle with a large flow rate, the
    modulated design meets the limit at a fraction of the flow, and
    pumping power (dp * Q) falls severalfold.
    """
    profile = hotspot_profile(hot_flux=1.6e6)
    uniform, q_u = uniform_worst_case_cavity(profile, LIMIT, **DESIGN_KWARGS)
    modulated, q_m = design_modulated_cavity(profile, LIMIT, **DESIGN_KWARGS)
    factor = uniform.pumping_power(q_u) / modulated.pumping_power(q_m)
    assert factor > 3.0


def test_junction_profile_monotone_fluid_heating():
    cavity = ModulatedCavity(
        segments=[ChannelSegment(1e-3, 50e-6) for _ in range(5)],
        pitch=PITCH,
        height=HEIGHT,
    )
    profile = [(1e-3, 5e5)] * 5
    temps = cavity.junction_profile(profile, 5e-9, INLET)
    # Constant flux + constant width: junction temperature rises along x.
    assert all(b > a for a, b in zip(temps, temps[1:]))


def test_pressure_drop_additive_over_segments():
    single = ModulatedCavity(
        segments=[ChannelSegment(2e-3, 50e-6)], pitch=PITCH, height=HEIGHT
    )
    split = ModulatedCavity(
        segments=[ChannelSegment(1e-3, 50e-6), ChannelSegment(1e-3, 50e-6)],
        pitch=PITCH,
        height=HEIGHT,
    )
    q = 5e-9
    assert split.pressure_drop(q) == pytest.approx(single.pressure_drop(q))


def test_unreachable_limit_raises():
    profile = [(1e-3, 5e7)] * 10  # absurd flux
    with pytest.raises(ValueError):
        uniform_worst_case_cavity(
            profile,
            LIMIT,
            widths=WIDTHS,
            pitch=PITCH,
            height=HEIGHT,
            inlet_temperature=INLET,
            flow_bounds=FLOW_BOUNDS,
        )


def test_profile_alignment_validated():
    cavity = ModulatedCavity(
        segments=[ChannelSegment(1e-3, 50e-6)], pitch=PITCH, height=HEIGHT
    )
    with pytest.raises(ValueError):
        cavity.junction_profile([(1e-3, 1e5), (1e-3, 1e5)], 5e-9, INLET)
    with pytest.raises(ValueError):
        cavity.junction_profile([(2e-3, 1e5)], 5e-9, INLET)
