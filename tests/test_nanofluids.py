"""Nano-fluid coolant models."""

import pytest
from hypothesis import given, strategies as st

from repro.materials import (
    ALUMINA,
    COPPER_OXIDE,
    SILICA,
    WATER,
    figure_of_merit,
    make_nanofluid,
)
from repro.materials.nanofluids import (
    NanoParticle,
    brinkman_viscosity,
    maxwell_conductivity,
)


def test_maxwell_zero_loading_is_base():
    assert maxwell_conductivity(0.6, 36.0, 0.0) == pytest.approx(0.6)


def test_maxwell_dilute_limit():
    # Dilute Maxwell limit for k_p >> k_b: k_eff ~ k_b (1 + 3 phi).
    phi = 0.01
    k = maxwell_conductivity(0.6, 400.0, phi)
    assert k == pytest.approx(0.6 * (1 + 3 * phi), rel=0.02)


@given(st.floats(0.0, 0.10))
def test_maxwell_monotone_in_loading(phi):
    k = maxwell_conductivity(0.6, 36.0, phi)
    assert k >= 0.6 - 1e-12
    if phi < 0.09:
        assert maxwell_conductivity(0.6, 36.0, phi + 0.01) > k


def test_low_conductivity_particles_reduce_k():
    # SiO2 particles (k ~ 1.38) barely raise water's k.
    k = maxwell_conductivity(0.6, SILICA.conductivity, 0.05)
    assert k < maxwell_conductivity(0.6, ALUMINA.conductivity, 0.05)


@given(st.floats(0.0, 0.10))
def test_brinkman_always_thickens(phi):
    assert brinkman_viscosity(8.9e-4, phi) >= 8.9e-4 - 1e-18


def test_nanofluid_is_a_liquid_drop_in():
    nf = make_nanofluid(WATER, ALUMINA, 0.04)
    assert nf.conductivity > WATER.conductivity
    assert nf.viscosity > WATER.viscosity
    assert nf.density > WATER.density
    # rho*cp mixes by volume: alumina lowers the volumetric capacity.
    assert nf.vol_heat_capacity < WATER.vol_heat_capacity


def test_zero_loading_returns_base_object():
    assert make_nanofluid(WATER, ALUMINA, 0.0) is WATER


def test_nanofluid_name_describes_loading():
    nf = make_nanofluid(WATER, COPPER_OXIDE, 0.02)
    assert "CuO" in nf.name
    assert "2.0%" in nf.name


def test_figure_of_merit_shows_no_free_lunch():
    """For a good particle (alumina) the Brinkman viscosity penalty
    cancels the Maxwell conductivity gain almost exactly (merit pinned
    near 1); for a poor particle (silica) the merit falls strictly below
    1 — why the paper's system experiments stay with plain water."""
    for phi in (0.01, 0.03, 0.06, 0.09):
        merit = figure_of_merit(WATER, make_nanofluid(WATER, ALUMINA, phi))
        assert 0.95 < merit < 1.05
    silica_merits = [
        figure_of_merit(WATER, make_nanofluid(WATER, SILICA, phi))
        for phi in (0.01, 0.03, 0.06, 0.09)
    ]
    assert all(b < a for a, b in zip(silica_merits, silica_merits[1:]))
    assert silica_merits[-1] < 1.0


def test_nanofluid_in_cavity_pressure_drop():
    from repro.geometry.stack import default_channel_geometry
    from repro.hydraulics import channel_pressure_drop
    from repro.units import ml_per_min_to_m3_per_s

    g = default_channel_geometry()
    q = ml_per_min_to_m3_per_s(20.0)
    nf = make_nanofluid(WATER, ALUMINA, 0.05)
    assert channel_pressure_drop(g, q, nf) > channel_pressure_drop(g, q, WATER)


def test_loading_bounds_enforced():
    with pytest.raises(ValueError):
        make_nanofluid(WATER, ALUMINA, 0.2)
    with pytest.raises(ValueError):
        maxwell_conductivity(0.6, 36.0, -0.01)
    with pytest.raises(ValueError):
        brinkman_viscosity(0.0, 0.05)


def test_particle_validation():
    with pytest.raises(ValueError):
        NanoParticle("bad", conductivity=0.0, density=1.0, specific_heat=1.0)
