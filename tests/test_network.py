"""Hydraulic flow-network solver."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hydraulics import HydraulicNetwork, parallel_channel_flows


def test_single_edge_is_ohms_law():
    net = HydraulicNetwork()
    net.add_edge("in", "out", resistance=2.0e9)
    pressures, flows = net.solve("in", "out", total_flow=1e-6)
    assert pressures["in"] == pytest.approx(2.0e9 * 1e-6)
    assert pressures["out"] == 0.0
    assert flows[0] == pytest.approx(1e-6)


def test_two_parallel_edges_split_by_conductance():
    net = HydraulicNetwork()
    net.add_edge("in", "out", resistance=1e9)
    net.add_edge("in", "out", resistance=3e9)
    _, flows = net.solve("in", "out", total_flow=4e-6)
    assert flows[0] == pytest.approx(3e-6)  # lower resistance carries more
    assert flows[1] == pytest.approx(1e-6)


def test_series_resistances_add():
    net = HydraulicNetwork()
    net.add_edge("in", "mid", 1e9)
    net.add_edge("mid", "out", 2e9)
    p = net.inlet_pressure("in", "out", 1e-6)
    assert p == pytest.approx(3e9 * 1e-6)


def test_flow_conservation_at_internal_nodes():
    # A ladder network: net flow into every internal node is zero.
    net = HydraulicNetwork()
    edges = [
        ("in", "a", 1e9),
        ("a", "b", 2e9),
        ("a", "out", 5e9),
        ("b", "out", 1e9),
        ("in", "b", 3e9),
    ]
    for e in edges:
        net.add_edge(*e)
    _, flows = net.solve("in", "out", 1e-6)
    for node in ("a", "b"):
        net_flow = 0.0
        for idx, (na, nb, _) in enumerate(edges):
            if na == node:
                net_flow -= flows[idx]
            if nb == node:
                net_flow += flows[idx]
        assert net_flow == pytest.approx(0.0, abs=1e-18)


def test_fluid_focusing_raises_local_flow():
    """Fig. 4: a low-resistance guide to the hot spot boosts its flow."""

    def build(hot_resistance):
        net = HydraulicNetwork()
        for i in range(5):
            r = hot_resistance if i == 2 else 2e9
            net.add_edge("in", f"ch{i}", 0.1e9)
            net.add_edge(f"ch{i}", "out", r)
        return net

    uniform = build(2e9)
    focused = build(0.5e9)  # guiding structure lowers the hot channel's R
    _, uf = uniform.solve("in", "out", 1e-6)
    _, ff = focused.solve("in", "out", 1e-6)
    hot_edge = 5  # edges alternate (in->ch, ch->out); ch2->out is index 5
    assert ff[hot_edge] > uf[hot_edge] * 1.5


def test_unknown_nodes_rejected():
    net = HydraulicNetwork()
    net.add_edge("a", "b", 1.0)
    with pytest.raises(KeyError):
        net.solve("a", "zz", 1.0)


def test_degenerate_inputs_rejected():
    net = HydraulicNetwork()
    net.add_edge("a", "b", 1.0)
    with pytest.raises(ValueError):
        net.solve("a", "a", 1.0)
    with pytest.raises(ValueError):
        net.solve("a", "b", -1.0)
    with pytest.raises(ValueError):
        net.add_edge("a", "b", 0.0)


@given(
    resistances=st.lists(st.floats(1e6, 1e12), min_size=2, max_size=20),
    total=st.floats(1e-9, 1e-4),
)
def test_parallel_split_conserves_total(resistances, total):
    flows = parallel_channel_flows(resistances, total)
    assert flows.sum() == pytest.approx(total, rel=1e-9)
    assert (flows >= 0.0).all()


def test_parallel_split_equal_resistances():
    flows = parallel_channel_flows([1e9] * 4, 4e-6)
    assert np.allclose(flows, 1e-6)
