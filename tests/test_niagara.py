"""UltraSPARC T1 floorplans against the Table I areas."""

import pytest

from repro import constants
from repro.geometry import core_tier_floorplan, cache_tier_floorplan
from repro.geometry.floorplan import total_area_by_kind


def test_die_area_matches_table_i():
    plan = core_tier_floorplan()
    assert plan.area == pytest.approx(constants.LAYER_AREA)


def test_core_tier_has_eight_cores_of_10mm2():
    plan = core_tier_floorplan()
    cores = plan.blocks_of_kind("core")
    assert len(cores) == 8
    for core in cores:
        assert core.area == pytest.approx(constants.CORE_AREA)


def test_cache_tier_has_four_l2_of_19mm2():
    plan = cache_tier_floorplan()
    caches = plan.blocks_of_kind("cache")
    assert len(caches) == 4
    for cache in caches:
        assert cache.area == pytest.approx(constants.L2_CACHE_AREA)


@pytest.mark.parametrize(
    "factory", [core_tier_floorplan, cache_tier_floorplan]
)
def test_tiers_fully_covered(factory):
    # The remaining area is explicitly modelled as crossbar/IO blocks.
    assert factory().coverage() == pytest.approx(1.0)


def test_core_tier_other_area_is_35mm2():
    by_kind = total_area_by_kind(core_tier_floorplan())
    assert by_kind["other"] == pytest.approx(35e-6)


def test_cache_tier_other_area_is_39mm2():
    by_kind = total_area_by_kind(cache_tier_floorplan())
    assert by_kind["other"] == pytest.approx(39e-6)


def test_core_numbering_offset():
    plan = core_tier_floorplan(first_core=8)
    names = [b.name for b in plan.blocks_of_kind("core")]
    assert names == [f"core{i}" for i in range(8, 16)]


def test_cache_numbering_offset():
    plan = cache_tier_floorplan(first_cache=4)
    names = [b.name for b in plan.blocks_of_kind("cache")]
    assert names == [f"l2_{i}" for i in range(4, 8)]


def test_blocks_align_to_quarter_mm_grid():
    pitch = 0.25e-3
    for plan in (core_tier_floorplan(), cache_tier_floorplan()):
        for block in plan.blocks:
            for coord in (block.x, block.y, block.x2, block.y2):
                assert abs(coord / pitch - round(coord / pitch)) < 1e-9
