"""Telemetry layer: span nesting, metric merge, manifests, overhead."""

import multiprocessing
import os
import pickle
import time

import numpy as np
import pytest

from repro import __version__
from repro.analysis import run_simulations_shared
from repro.analysis.sweep import resilient_fan_out
from repro.obs import (
    JsonlSink,
    MemorySink,
    build_manifest,
    get_registry,
    get_tracer,
    read_jsonl,
    read_manifest,
    render_trace,
    session,
    span_tree,
)
from repro.obs.metrics import MetricsRegistry
from repro.scenario import (
    ControlSpec,
    PolicySpec,
    ResultCache,
    Runner,
    Scenario,
    SolverSpec,
    StackSpec,
    WorkloadSpec,
)
from repro.thermal import TransientStepper

NX, NY = 12, 10
DURATION = 2
STEPS_PER_RUN = 20  # DURATION / the 100 ms control period


@pytest.fixture(autouse=True)
def _pristine_tracer():
    """Every test starts dark and leaves the global tracer dark."""
    tracer = get_tracer()
    assert not tracer.has_sinks
    yield
    tracer._sinks.clear()
    tracer.enabled = True


def _scenario(label="obs", workload="database"):
    policy = PolicySpec(name="LC_FUZZY")
    return Scenario(
        stack=StackSpec(tiers=2, cooling=policy.cooling),
        workload=WorkloadSpec(name=workload, duration=DURATION),
        policy=policy,
        solver=SolverSpec(nx=NX, ny=NY),
        control=ControlSpec(),
        label=label,
    )


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


def test_span_nesting_emit_order_and_tree():
    tracer = get_tracer()
    sink = MemorySink()
    with session(sink):
        with tracer.span("outer", grid="12x10"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
    spans = sink.spans()
    # Spans emit at close: children before their parent.
    assert [s["name"] for s in spans] == ["inner", "inner", "outer"]
    # Sorting by seq recovers open order; depth gives the nesting.
    by_seq = sorted(spans, key=lambda s: s["seq"])
    assert [s["name"] for s in by_seq] == ["outer", "inner", "inner"]
    assert [s["depth"] for s in by_seq] == [0, 1, 1]
    assert by_seq[0]["attrs"] == {"grid": "12x10"}
    tree = span_tree(sink.records)
    assert tree[("outer",)].count == 1
    assert tree[("outer", "inner")].count == 2
    assert tree[("outer",)].total >= tree[("outer", "inner")].total


def test_session_emits_metrics_delta_record():
    sink = MemorySink()
    with session(sink):
        get_registry().counter("test_obs.session_counter").inc(7)
    (metrics_record,) = [
        r for r in sink.records if r["type"] == "metrics"
    ]
    assert (
        metrics_record["metrics"]["test_obs.session_counter"]["value"] == 7
    )


def test_jsonl_sink_roundtrip_and_render(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = get_tracer()
    with session(JsonlSink(path)):
        with tracer.span("steady_solve", nodes=1200):
            tracer.event("krylov.fallback", iterations=3)
    records = read_jsonl(path)
    assert {r["type"] for r in records} == {"span", "event", "metrics"}
    rendered = render_trace(str(path))
    assert "steady_solve" in rendered
    assert "krylov.fallback" in rendered


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


def test_registry_snapshot_delta_merge():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc(3)
    histogram = registry.histogram("h")
    histogram.observe(1.0)
    histogram.observe(3.0)
    registry.gauge("g").set(2.5)
    start = registry.snapshot()
    counter.inc(2)
    histogram.observe(5.0)
    delta = registry.delta_since(start)
    assert delta["c"]["value"] == 2
    assert delta["h"]["count"] == 1
    assert delta["h"]["total"] == 5.0
    assert "g" not in delta  # unchanged gauges stay out of the delta
    other = MetricsRegistry()
    other.merge(delta)
    other.merge(delta)
    assert other.counter("c").value == 4
    assert other.histogram("h").count == 2


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_metric_merge_across_pool_workers(start_method):
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} start method unavailable")
    jobs = [_scenario("job-a"), _scenario("job-b", workload="web")]
    registry = get_registry()
    sink = MemorySink()
    before = registry.snapshot()
    with session(sink):
        results = run_simulations_shared(
            jobs, processes=2, start_method=start_method
        )
    assert len(results) == 2
    delta = registry.delta_since(before)
    # Two 2 s runs at the 100 ms control period, merged back from the
    # workers.  fork workers inherit the parent's counter values and
    # spawn workers start from zero; the capture delta must make both
    # roll up identically.
    assert delta["sim.steps"]["value"] == 2 * STEPS_PER_RUN
    assert delta["sim.max_temperature_c"]["count"] == 2 * STEPS_PER_RUN
    span_records = [r for r in sink.records if r["type"] == "span"]
    names = {r["name"] for r in span_records}
    assert "sweep.job" in names
    assert "simulator.step" in names
    worker_pids = {
        r["pid"] for r in span_records if r["name"] == "simulator.run"
    }
    assert worker_pids and os.getpid() not in worker_pids
    # Ingested worker spans must still satisfy the seq/depth invariant.
    tree = span_tree(sink.records)
    step_paths = [p for p in tree if p[-1] == "simulator.step"]
    assert step_paths
    assert all("sweep.job" in p for p in step_paths)


# ---------------------------------------------------------------------------
# manifests
# ---------------------------------------------------------------------------


def test_manifest_hash_stable_across_labels():
    kwargs = dict(
        version=__version__,
        solver_backend="direct",
        wall_s=0.1,
        cpu_s=0.1,
        metrics={},
    )
    a = build_manifest(_scenario("label-a"), **kwargs)
    b = build_manifest(_scenario("label-b"), **kwargs)
    other = build_manifest(_scenario("label-a", workload="web"), **kwargs)
    # The label is bookkeeping: it must not move the content hash.
    assert a["content_hash"] == b["content_hash"]
    assert a["label"] != b["label"]
    assert other["content_hash"] != a["content_hash"]


def test_runner_writes_manifest_next_to_cache_entry(tmp_path):
    scenario = _scenario("manifest-run")
    cache = ResultCache(tmp_path)
    runner = Runner(scenario, cache=cache)
    runner.run()
    assert runner.last_manifest is not None
    assert runner.last_manifest["content_hash"] == scenario.content_hash()
    on_disk = read_manifest(cache.manifest_path(scenario))
    assert on_disk is not None
    assert on_disk["content_hash"] == scenario.content_hash()
    assert on_disk["version"] == __version__
    assert on_disk["cached"] is False
    assert on_disk["metrics"]["sim.steps"]["value"] == STEPS_PER_RUN
    assert cache.manifest_path(scenario).parent == cache.path(scenario).parent
    # A cache hit still refreshes the manifest, flagged as cached.
    hit_runner = Runner(scenario, cache=cache)
    hit_runner.run()
    assert hit_runner.last_manifest["cached"] is True
    assert read_manifest(cache.manifest_path(scenario))["cached"] is True


# ---------------------------------------------------------------------------
# failure context (JobFailure bugfix)
# ---------------------------------------------------------------------------


def test_job_failure_carries_timing_and_span_context():
    tracer = get_tracer()

    def boom(_item):
        with tracer.span("job.setup"):
            with tracer.span("job.solve"):
                raise ValueError("kaput")

    outcome = resilient_fan_out(boom, [0], None, retries=1)
    (failure,) = outcome.failures
    assert failure.error_type == "ValueError"
    assert failure.attempts == 2
    assert failure.retry_index == 1
    assert failure.last_span == "job.solve"
    assert failure.elapsed_s is not None
    assert failure.elapsed_s >= 0.0


def test_exception_annotations_survive_pickling():
    try:
        with get_tracer().span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError as exc:
        exc._obs_elapsed_s = 1.5
        restored = pickle.loads(pickle.dumps(exc))
    assert restored._obs_last_span == "doomed"
    assert restored._obs_elapsed_s == 1.5


# ---------------------------------------------------------------------------
# overhead
# ---------------------------------------------------------------------------


def test_noop_overhead_within_two_percent(liquid_stack_2tier):
    """Dark telemetry must cost <2% on the transient stepping loop.

    Shared runners show +-8-10% window-to-window timing noise (wall
    *and* CPU time), which a direct dark-vs-instrumented A/B cannot
    resolve against a 2% budget.  The budget is therefore asserted
    compositionally: measure the dark (sink-less) cost of one span and
    one counter increment directly, multiply by a generous bound on
    what one transient step fires (actually 1 span + 3 increments,
    budgeted here as 4 spans + 8 increments), and compare against the
    measured per-step cost at the closed-loop grid resolution (23x20).
    The real margin is ~10x, so timing noise cannot flip the verdict.
    """
    from repro.thermal import CompactThermalModel

    model = CompactThermalModel(liquid_stack_2tier, nx=23, ny=20)
    stepper = TransientStepper(
        model, dt=0.1, initial=model.uniform_field(300.15)
    )
    packed = np.full(len(model.block_order), 2.0)
    tracer = get_tracer()
    assert not tracer.has_sinks  # dark: the no-op path under test

    def best_of(fn, windows=5):
        best = float("inf")
        for _ in range(windows):
            start = time.process_time()
            fn()
            best = min(best, time.process_time() - start)
        return best

    def run_steps(steps=50):
        for _ in range(steps):
            stepper.step_packed(packed)

    def run_spans(n=20000):
        for _ in range(n):
            with tracer.span("overhead.probe", grid="23x20"):
                pass

    counter = get_registry().counter("test_obs.overhead_probe")

    def run_incs(n=20000):
        for _ in range(n):
            counter.inc()

    run_steps(20)  # warm the factor cache out of the measurement
    per_step = best_of(run_steps) / 50
    per_span = best_of(run_spans) / 20000
    per_inc = best_of(run_incs) / 20000
    per_step_overhead = 4 * per_span + 8 * per_inc
    assert per_step_overhead < 0.02 * per_step, (
        f"dark telemetry budget blown: 4 spans + 8 increments cost "
        f"{per_step_overhead * 1e6:.2f} us against a 2% budget of "
        f"{0.02 * per_step * 1e6:.2f} us per {per_step * 1e3:.3f} ms step"
    )
