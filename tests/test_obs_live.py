"""Live observability plane: trace stitching, metrics ring, watchdog.

Unit coverage for :mod:`repro.obs.live` plus the chaos-style
end-to-end acceptance test: submit jobs, scrape live metrics mid-run,
then render every job's stitched client -> queue -> worker span tree
and gate on the benchmark trajectory.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.analysis.perf import append_history, read_history
from repro.cli import main
from repro.obs import (
    MemorySink,
    MetricsRegistry,
    MetricsRing,
    PerfWatchdog,
    SamplingProfiler,
    TraceContext,
    annotate_records,
    check_bench_history,
    get_registry,
    get_tracer,
    json_safe_snapshot,
    record_job_id,
    render_prometheus,
)
from repro.service import RetryPolicy, ScenarioJobService, ServiceClient
from tests.chaos import make_scenario


@pytest.fixture(autouse=True)
def _pristine_tracer():
    """Every test starts dark and leaves the global tracer dark."""
    tracer = get_tracer()
    assert not tracer.has_sinks
    yield
    tracer._sinks.clear()
    tracer.enabled = True


# ---------------------------------------------------------------------------
# trace context
# ---------------------------------------------------------------------------


def test_trace_context_wire_roundtrip():
    context = TraceContext.mint()
    assert len(context.trace_id) == 16
    wire = context.to_wire()
    back = TraceContext.from_wire(wire)
    assert back is not None
    assert back.trace_id == context.trace_id
    assert back.client_t0 == pytest.approx(context.client_t0)


def test_trace_context_rejects_malformed_wire():
    assert TraceContext.from_wire(None) is None
    assert TraceContext.from_wire("abc") is None
    assert TraceContext.from_wire({}) is None
    assert TraceContext.from_wire({"client_t0": 1.0}) is None
    # A trace id without a clock is still a usable context.
    bare = TraceContext.from_wire({"trace_id": "t1", "client_t0": "bad"})
    assert bare is not None and bare.client_t0 is None


def test_annotate_records_stamps_without_mutating():
    records = [{"kind": "span", "name": "a"}]
    stamped = annotate_records(records, job_id="job-1", trace_id="t1")
    assert stamped[0]["job_id"] == "job-1"
    assert stamped[0]["trace_id"] == "t1"
    assert "job_id" not in records[0]
    assert record_job_id(stamped[0]) == "job-1"
    assert record_job_id({"attrs": {"job_id": "job-2"}}) == "job-2"
    assert record_job_id({"name": "x"}) is None


# ---------------------------------------------------------------------------
# metrics ring + exposition
# ---------------------------------------------------------------------------


def _local_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("obs.ring.ticks").inc(3)
    registry.gauge("service.queue.depth").set(2.0)
    return registry


def test_ring_eviction_counts_unflushed_samples():
    registry = _local_registry()
    ring = MetricsRing(capacity=3, interval_s=0.0)
    for _ in range(5):
        ring.sample(registry)
    assert len(ring) == 3
    # Two samples fell off the head before any flush happened.
    assert ring.evicted_unflushed == 2
    assert [s["seq"] for s in ring.window()] == [3, 4, 5]
    assert [s["seq"] for s in ring.window(last=2)] == [4, 5]


def test_ring_flush_appends_only_new_samples(tmp_path):
    registry = _local_registry()
    ring = MetricsRing(capacity=8, interval_s=0.0)
    path = tmp_path / "metrics.jsonl"
    ring.sample(registry)
    ring.sample(registry)
    assert ring.flush(path) == 2
    assert ring.flush(path) == 0  # idempotent: nothing new
    ring.sample(registry)
    assert ring.flush(path) == 1

    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert [l["seq"] for l in lines] == [1, 2, 3]
    assert all(l["type"] == "metrics_sample" for l in lines)
    # Flushed samples never evict-count afterwards.
    for _ in range(20):
        ring.sample(registry)
    flushed_before = ring.evicted_unflushed
    assert flushed_before > 0  # unflushed tail did evict
    ring.flush(path)
    ring.sample(registry)
    assert ring.evicted_unflushed == flushed_before


def test_json_safe_snapshot_nulls_untouched_histogram_bounds():
    registry = MetricsRegistry()
    registry.histogram("solve.wall_s")  # untouched: min=inf, max=-inf
    safe = json_safe_snapshot(registry)
    assert safe["solve.wall_s"]["min"] is None
    assert safe["solve.wall_s"]["max"] is None
    json.dumps(safe)  # strict-JSON loadable


def test_render_prometheus_text_exposition():
    registry = MetricsRegistry()
    registry.counter("service.jobs.done").inc(4)
    registry.gauge("service.queue.depth").set(1.0)
    hist = registry.histogram("service.solve.wall_s.direct")
    hist.observe(0.5)
    hist.observe(1.5)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_service_jobs_done_total counter" in text
    assert "repro_service_jobs_done_total 4" in text
    assert "repro_service_queue_depth 1" in text
    assert "repro_service_solve_wall_s_direct_count 2" in text
    assert "repro_service_solve_wall_s_direct_sum 2" in text


# ---------------------------------------------------------------------------
# sampling profiler
# ---------------------------------------------------------------------------


def _spin(deadline_s: float = 0.4) -> float:
    total = 0.0
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        total += sum(i * i for i in range(200))
    return total


@pytest.mark.skipif(
    not SamplingProfiler.available(), reason="no signal-based profiling here"
)
def test_profiler_collapsed_stacks_and_hot_frames(tmp_path):
    profiler = SamplingProfiler(interval_s=0.002)
    with profiler:
        _spin()
    assert profiler.total_samples > 0
    collapsed = profiler.collapsed()
    assert collapsed and all(" " in line for line in collapsed)
    stack, count = collapsed[0].rsplit(" ", 1)
    assert int(count) >= 1 and ";" in stack
    hot = profiler.hot_frames(3)
    assert hot and hot[0]["share"] <= 1.0
    assert any("_spin" in frame["frame"] for frame in hot)
    out = profiler.write(tmp_path / "profile.collapsed")
    assert out.read_text().strip()


# ---------------------------------------------------------------------------
# perf watchdog + bench-history check
# ---------------------------------------------------------------------------


def test_watchdog_regression_is_edge_triggered():
    sink = MemorySink()
    tracer = get_tracer()
    tracer.add_sink(sink)
    try:
        dog = PerfWatchdog(threshold=1.5, min_samples=3, window=4)
        for _ in range(3):  # warmup -> baseline 1.0
            assert dog.observe("direct", 1.0) is None
        event = None
        for _ in range(4):  # sustained 3x regression
            event = dog.observe("direct", 3.0) or event
        assert event is not None and event["ratio"] > 1.5
        assert dog.snapshot()["direct"]["state"] == "regressing"
        regression_events = [
            r for r in sink.records if r.get("name") == "perf.regression"
        ]
        assert len(regression_events) == 1  # no spam while sustained
        for _ in range(8):  # recovery re-arms the edge
            dog.observe("direct", 1.0)
        assert dog.snapshot()["direct"]["state"] == "ok"
        dog.observe("direct", 50.0)
        dog.observe("direct", 50.0)
        regression_events = [
            r for r in sink.records if r.get("name") == "perf.regression"
        ]
        assert len(regression_events) == 2
    finally:
        tracer.remove_sink(sink)


def test_check_bench_history_flags_only_real_regressions():
    entries = [
        {"t": i, "results": {"steady_ms": 10.0 + i, "speedup_x": 3.0}}
        for i in range(5)
    ]
    ok = check_bench_history(entries)
    assert ok["checked"] == 1 and not ok["regressions"]

    entries.append({"t": 9, "results": {"steady_ms": 40.0, "speedup_x": 0.1}})
    bad = check_bench_history(entries)
    # steady_ms blew past 1.5x its median; the *_x ratio is exempt.
    assert set(bad["regressions"]) == {"steady_ms"}
    assert bad["regressions"]["steady_ms"]["ratio"] > 1.5


def test_check_bench_history_needs_two_entries():
    report = check_bench_history([{"results": {"a": 1.0}}])
    assert report["checked"] == 0
    assert report["skipped"]


# ---------------------------------------------------------------------------
# bench history file + `repro report bench --check`
# ---------------------------------------------------------------------------


def test_append_history_and_cli_bench_check(tmp_path, capsys):
    path = tmp_path / "history.jsonl"
    for i in range(3):
        append_history(
            {"steady_ms": 10.0 + i, "transient_ms": 100.0}, path=path
        )
    entries = read_history(path)
    assert len(entries) == 3
    assert all("t" in e and "version" in e for e in entries)

    assert main(["report", "bench", str(path), "--check"]) == 0
    out = capsys.readouterr().out
    assert "bench check passed" in out

    append_history({"steady_ms": 99.0, "transient_ms": 100.0}, path=path)
    assert main(["report", "bench", str(path), "--check"]) == 1
    out = capsys.readouterr().out
    assert "PERF REGRESSION: steady_ms" in out


def test_read_history_skips_garbage_lines(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history({"a": 1.0}, path=path)
    with open(path, "a") as handle:
        handle.write("{torn\n")
    append_history({"a": 2.0}, path=path)
    assert [e["results"]["a"] for e in read_history(path)] == [1.0, 2.0]


# ---------------------------------------------------------------------------
# end-to-end: live service with stitched traces (acceptance test)
# ---------------------------------------------------------------------------


@pytest.fixture()
def live_service(tmp_path):
    svc = ScenarioJobService(
        tmp_path / "svc",
        max_workers=1,
        retry=RetryPolicy(retries=1, backoff_s=0.01),
        fsync=False,
        poll_interval_s=0.02,
        drain_timeout_s=10.0,
        metrics_interval_s=0.05,
        metrics_flush_every=2,
    )
    svc.start_background()
    yield svc
    svc.stop_background()


def test_live_service_stitched_traces_and_metrics(
    live_service, monkeypatch, capsys
):
    """Submit N jobs -> scrape metrics mid-run -> stitched trace per job."""
    monkeypatch.setenv("REPRO_SERVICE_TEST_DELAY_S", "0.4")
    client = ServiceClient(live_service.address)

    # The registry is process-global: earlier in-process service tests
    # may already have observed solve latencies.  Assert the *delta*.
    before = {
        name: entry["count"]
        for name, entry in get_registry().snapshot().items()
        if name.startswith("service.solve.wall_s.")
    }

    submissions = []
    for label, workload in (("live-a", "database"), ("live-b", "web")):
        context = TraceContext.mint()
        accepted = client.submit(
            make_scenario(label, workload).to_dict(),
            trace=context.to_wire(),
        )
        assert accepted["trace_id"] == context.trace_id
        submissions.append((accepted["job_id"], context.trace_id))

    # One worker, two jobs with a 0.4 s chaos delay: mid-run the queue
    # holds the second job and the gauges must say so.
    saw_depth = False
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        snap = client.metrics(window=10)
        depth = snap["metrics"].get("service.queue.depth", {})
        if depth.get("value", 0.0) >= 1.0:
            saw_depth = True
            break
        time.sleep(0.02)
    assert saw_depth, "queue depth gauge never went nonzero mid-run"

    for job_id, _ in submissions:
        job = client.wait_for(job_id, timeout=180.0)
        assert job["state"] == "DONE"

    # Per-backend solve latency histograms are live on the metrics verb.
    snap = client.metrics(window=10)
    latency = {
        name: entry
        for name, entry in snap["metrics"].items()
        if name.startswith("service.solve.wall_s.")
    }
    assert latency, "no per-backend solve latency histograms"
    solved = sum(
        entry["count"] - before.get(name, 0)
        for name, entry in latency.items()
    )
    assert solved == 2
    assert all(entry["total"] > 0 for entry in latency.values())
    assert snap["metrics"]["service.wal.bytes"]["value"] > 0
    assert snap["ring"]["samples"] > 0
    assert snap["window"], "ring window came back empty"

    # The periodic flush wrote strict-JSON samples next to the WAL.
    metrics_path = live_service.root / "metrics.jsonl"
    assert metrics_path.exists()
    flushed = [
        json.loads(l) for l in metrics_path.read_text().splitlines()
    ]
    assert flushed and all(f["type"] == "metrics_sample" for f in flushed)

    # The trace verb and the CLI agree: one stitched tree per job.
    for job_id, trace_id in submissions:
        records = client.trace(job_id)["records"]
        assert records
        assert {r.get("trace_id") for r in records if r.get("trace_id")} == {
            trace_id
        }
        assert main(
            ["report", "trace", "--job", job_id,
             "--root", str(live_service.root)]
        ) == 0
        rendered = capsys.readouterr().out
        assert job_id in rendered
        assert trace_id in rendered
        for span in ("client.submit", "queue.wait", "service.job",
                     "scenario.run"):
            assert span in rendered, f"{span} missing from {job_id} tree"

    # `repro top --once` renders the same live plane.
    assert main(
        ["top", "--once", "--root", str(live_service.root)]
    ) == 0
    top = capsys.readouterr().out
    assert "repro top" in top
    assert "queue depth" in top
    assert "solve [" in top

    # And the trajectory gate passes against freshly appended history.
    history = live_service.root / "bench-history.jsonl"
    for entry in ({"steady_ms": 10.0}, {"steady_ms": 10.5},
                  {"steady_ms": 10.2}):
        append_history(entry, path=history)
    assert main(["report", "bench", str(history), "--check"]) == 0
    assert "bench check passed" in capsys.readouterr().out
