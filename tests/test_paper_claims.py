"""Fast end-to-end checks of the paper's qualitative claims.

The benchmark harness measures the quantitative bands on full-length
runs; these integration tests assert the *orderings* — the claims that
must hold for any sane calibration — on short traces and coarse grids
so they stay inside the unit-test budget.
"""

import pytest

from repro.core import (
    AirLoadBalancing,
    AirTDVFSLoadBalancing,
    LiquidFuzzy,
    LiquidLoadBalancing,
    SystemSimulator,
)
from repro.geometry import build_3d_mpsoc
from repro.workload import max_utilisation_trace, web_server_trace

DURATION = 15


def run(policy, tiers=2, trace_factory=max_utilisation_trace):
    threads = 32 * (tiers // 2)
    trace = trace_factory(threads=threads, duration=DURATION)
    stack = build_3d_mpsoc(tiers, policy.cooling)
    return SystemSimulator(stack, policy, trace, nx=12, ny=10).run()


@pytest.fixture(scope="module")
def results():
    return {
        "ac2": run(AirLoadBalancing()),
        "tdvfs2": run(AirTDVFSLoadBalancing()),
        "lc2": run(LiquidLoadBalancing()),
        "fz2": run(LiquidFuzzy()),
        "ac4": run(AirLoadBalancing(), tiers=4),
        "lc4": run(LiquidLoadBalancing(), tiers=4),
    }


def test_liquid_cooling_removes_all_hot_spots(results):
    for key in ("lc2", "fz2", "lc4"):
        assert results[key].hotspot_percent_any == 0.0


def test_air_cooled_stack_runs_hot(results):
    assert results["ac2"].peak_temperature_c > 80.0
    assert results["ac2"].hotspot_percent_any > 0.0


def test_four_tier_air_is_catastrophic(results):
    assert results["ac4"].peak_temperature_c > 130.0
    assert results["ac4"].hotspot_percent_any == pytest.approx(100.0)


def test_four_tier_liquid_cooler_than_two_tier(results):
    assert results["lc4"].peak_temperature_c < results["lc2"].peak_temperature_c


def test_fuzzy_saves_cooling_energy_but_stays_below_threshold(results):
    assert results["fz2"].pump_energy_j < results["lc2"].pump_energy_j
    assert results["fz2"].peak_temperature_c < 85.0
    # The trade: the fuzzy controller runs warmer than worst-case flow.
    assert results["fz2"].peak_temperature_c > results["lc2"].peak_temperature_c


def test_liquid_policies_do_not_degrade_performance(results):
    assert results["lc2"].degradation_percent == 0.0
    assert results["fz2"].degradation_percent < 0.01


def test_tdvfs_caps_temperature_at_cost_of_delay(results):
    assert (
        results["tdvfs2"].degradation_percent
        > results["ac2"].degradation_percent
    )
    assert (
        results["tdvfs2"].hotspot_percent_avg
        <= results["ac2"].hotspot_percent_avg
    )


def test_fuzzy_beats_worst_case_flow_on_light_load():
    lc = run(LiquidLoadBalancing(), trace_factory=web_server_trace)
    fz = run(LiquidFuzzy(), trace_factory=web_server_trace)
    assert fz.total_energy_j < lc.total_energy_j
