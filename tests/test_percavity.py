"""Per-cavity flow control (extension) and its honest outcome."""

import pytest

from repro.design import allocate_cavity_flows, percavity_saving
from repro.geometry import build_3d_mpsoc
from repro.thermal import CompactThermalModel
from repro.units import celsius_to_kelvin


def consolidated_powers(stack):
    """Lower Niagara busy, upper Niagara idle — the most per-cavity-
    friendly scenario."""
    powers = {}
    for layer, block in stack.iter_blocks():
        busy = layer.name in ("tier0_die", "tier1_die")
        if block.kind == "core":
            powers[(layer.name, block.name)] = 5.0 if busy else 0.8
        elif block.kind == "cache":
            powers[(layer.name, block.name)] = 1.5 if busy else 0.3
    return powers


@pytest.fixture()
def four_tier():
    stack = build_3d_mpsoc(4)
    model = CompactThermalModel(stack, nx=12, ny=10)
    return model, consolidated_powers(stack)


def test_set_cavity_flow_api(four_tier):
    model, powers = four_tier
    model.set_flow(20.0)
    model.set_cavity_flow("cavity1", 12.0)
    assert model.cavity_flows == {
        "cavity0": 20.0,
        "cavity1": 12.0,
        "cavity2": 20.0,
    }
    assert model.flow_ml_min == 20.0  # the max across cavities
    with pytest.raises(KeyError):
        model.set_cavity_flow("cavity9", 12.0)
    with pytest.raises(ValueError):
        model.set_cavity_flow("cavity0", 0.0)


def test_flow_signature_distinguishes_allocations(four_tier):
    model, _ = four_tier
    model.set_flow(20.0)
    uniform_key = model.flow_signature()
    model.set_cavity_flow("cavity2", 10.0)
    assert model.flow_signature() != uniform_key


def test_energy_conserved_with_mixed_flows(four_tier):
    model, powers = four_tier
    model.set_flow(25.0)
    model.set_cavity_flow("cavity2", 10.0)
    field = model.steady_state(powers)
    removed = model.heat_removed_by_coolant(field)
    assert removed == pytest.approx(sum(powers.values()), rel=1e-9)


def test_reducing_one_cavity_warms_the_whole_stack(four_tier):
    """The tiers are conductively coupled through the cavity walls:
    starving ANY cavity raises every tier's temperature."""
    model, powers = four_tier
    model.set_flow(14.7)
    base = model.steady_state(powers)
    base_peaks = [
        base.layer(f"tier{t}_die").max() for t in range(4)
    ]
    model.set_cavity_flow("cavity2", 10.0)
    reduced = model.steady_state(powers)
    for t in range(4):
        assert reduced.layer(f"tier{t}_die").max() > base_peaks[t]


def test_allocation_meets_the_limit(four_tier):
    model, powers = four_tier
    limit = celsius_to_kelvin(52.0)
    flows = allocate_cavity_flows(model, powers, limit)
    assert set(flows) == {"cavity0", "cavity1", "cavity2"}
    assert model.steady_state(powers).max() <= limit + 1e-6


def test_percavity_saving_is_small_on_this_architecture(four_tier):
    """The honest extension result: because the silicon inter-channel
    walls couple the tiers so strongly, per-cavity valving saves almost
    nothing over the paper's single shared pump setting — evidence the
    paper's simpler architecture choice is sound."""
    model, powers = four_tier
    flows, uniform_w, percavity_w = percavity_saving(
        model, powers, celsius_to_kelvin(52.0)
    )
    assert percavity_w <= uniform_w + 1e-9
    saving = 1.0 - percavity_w / uniform_w
    assert saving < 0.15


def test_step_validation(four_tier):
    model, powers = four_tier
    with pytest.raises(ValueError):
        allocate_cavity_flows(
            model, powers, celsius_to_kelvin(60.0), step_ml_min=0.0
        )
