"""Caching, packed-power fast path, and assembly regression tests.

Covers the performance plumbing added around the thermal model: the
steady-factor LRU cache (keyed on flow signatures, so flow changes can
never serve stale factorisations), the transient stepper's factor
cache statistics, the packed power-injection fast path, and the
capacitance-fill regression with equal-comparing stack elements.
"""

import numpy as np
import pytest

from repro.geometry import build_3d_mpsoc
from repro.geometry.stack import Layer
from repro.thermal import CompactThermalModel, TransientStepper


def _model(tiers: int = 2, **kwargs) -> CompactThermalModel:
    return CompactThermalModel(build_3d_mpsoc(tiers), nx=12, ny=10, **kwargs)


def _powers(model: CompactThermalModel) -> dict:
    return {ref: 2.0 for ref in model.block_order}


# ---------------------------------------------------------------------------
# capacitance fill with equal-comparing elements
# ---------------------------------------------------------------------------


def test_identical_layers_capacitance_regression():
    """Two equal-comparing layers must both receive their capacitance.

    ``StackDesign`` validates name uniqueness only at construction, so a
    mutated design can hold two equal elements.  A ``list.index``-based
    level lookup resolves both to the *first* occurrence and leaves the
    second level's capacitance at zero; the enumerate-based fill must
    assign every level.
    """
    stack = build_3d_mpsoc(2)
    die_levels = [
        level
        for level, element in enumerate(stack.elements)
        if isinstance(element, Layer) and element.name.endswith("_die")
    ]
    assert len(die_levels) >= 2
    first, last = die_levels[0], die_levels[-1]
    stack.elements[last] = stack.elements[first]
    assert stack.elements[last] == stack.elements[first]

    model = CompactThermalModel(stack, nx=8, ny=6)
    duplicated = stack.elements[last]
    expected = (
        duplicated.material.vol_heat_capacity
        * model.grid.cell_area
        * duplicated.thickness
    )
    filled = model.capacitance[model.grid.level_slice(last)]
    assert np.all(filled == expected)
    assert np.all(model.capacitance > 0.0)


# ---------------------------------------------------------------------------
# steady-factor cache
# ---------------------------------------------------------------------------


def test_steady_cache_counts_hits_and_misses():
    model = _model()
    powers = _powers(model)
    model.steady_state(powers)
    assert model.steady_cache_info()[:2] == (0, 1)
    model.steady_state(powers)
    assert model.steady_cache_info()[:2] == (1, 1)
    assert model.steady_cache_info().currsize == 1


def test_set_flow_never_serves_stale_factors():
    model = _model()
    powers = _powers(model)
    hot = model.steady_state(powers).values
    model.set_flow(model.flow_ml_min / 4.0)
    throttled = model.steady_state(powers).values
    # Lower flow must heat the stack up — a stale factor would not.
    assert throttled.max() > hot.max() + 1.0
    assert model.steady_cache_info()[:2] == (0, 2)
    # Returning to the original flow hits the first factor again and
    # reproduces the original field bitwise.
    model.set_flow(model.flow_ml_min * 4.0)
    again = model.steady_state(powers).values
    assert model.steady_cache_info()[:2] == (1, 2)
    assert np.array_equal(again, hot)


def test_uniform_override_and_signature_keys_coexist():
    model = _model()
    powers = _powers(model)
    a = model.steady_state(powers, flow_ml_min=50.0)
    b = model.steady_state(powers, flow_ml_min=50.0)
    assert np.array_equal(a.values, b.values)
    info = model.steady_cache_info()
    assert info.hits == 1 and info.misses == 1
    # The stored per-cavity state is untouched by the override.
    model.steady_state(powers)
    assert model.steady_cache_info().misses == 2


def test_steady_cache_lru_eviction():
    model = _model(max_steady_factors=2)
    powers = _powers(model)
    for flow in (20.0, 40.0, 60.0):
        model.steady_state(powers, flow_ml_min=flow)
    info = model.steady_cache_info()
    assert info.misses == 3 and info.currsize == 2
    # 20 ml/min was evicted; 60 ml/min is still cached.
    model.steady_state(powers, flow_ml_min=60.0)
    assert model.steady_cache_info().hits == 1
    model.steady_state(powers, flow_ml_min=20.0)
    assert model.steady_cache_info().misses == 4


def test_per_cavity_flow_changes_cache_key():
    model = _model(tiers=4)
    cavities = sorted(model.cavity_flows)
    assert len(cavities) >= 2
    powers = _powers(model)
    uniform = model.steady_state(powers).values
    model.set_cavity_flow(cavities[0], model.cavity_flows[cavities[0]] / 5.0)
    starved = model.steady_state(powers).values
    assert not np.array_equal(uniform, starved)
    assert model.steady_cache_info().misses == 2
    # Restoring the flow recovers the uniform signature -> cache hit.
    model.set_flow(max(model.cavity_flows.values()))
    assert np.array_equal(model.steady_state(powers).values, uniform)
    assert model.steady_cache_info().hits == 1


def test_clear_steady_cache_resets_statistics():
    model = _model()
    model.steady_state(_powers(model))
    model.clear_steady_cache()
    info = model.steady_cache_info()
    assert info == (0, 0, 0, info.maxsize)


# ---------------------------------------------------------------------------
# transient stepper cache and packed fast path
# ---------------------------------------------------------------------------


def test_stepper_cache_info_counts():
    model = _model()
    powers = _powers(model)
    stepper = TransientStepper(model, 0.1, model.uniform_field(300.0))
    stepper.step(powers)
    stepper.step(powers)
    assert stepper.cache_info()[:2] == (1, 1)
    model.set_flow(model.flow_ml_min / 2.0)
    stepper.step(powers)
    info = stepper.cache_info()
    assert (info.hits, info.misses, info.currsize) == (1, 2, 2)


def test_stepper_cache_eviction_bound():
    model = _model()
    powers = _powers(model)
    stepper = TransientStepper(
        model, 0.1, model.uniform_field(300.0), max_cached_factors=1
    )
    base_flow = model.flow_ml_min
    for flow in (base_flow, base_flow / 2.0, base_flow):
        model.set_flow(flow)
        stepper.step(powers)
    info = stepper.cache_info()
    # Only one slot: the ping-pong refactorises every time.
    assert (info.hits, info.misses, info.currsize) == (0, 3, 1)


def test_step_packed_matches_dict_step_bitwise():
    model = _model()
    powers = {ref: float(p) for ref, p in zip(
        model.block_order,
        np.random.default_rng(3).uniform(0.5, 5.0, len(model.block_order)),
    )}
    initial = model.uniform_field(305.0)
    by_dict = TransientStepper(model, 0.1, initial)
    by_packed = TransientStepper(model, 0.1, initial)
    packed = model.pack_powers(powers)
    for _ in range(5):
        by_dict.step(powers)
        by_packed.step_packed(packed)
    assert np.array_equal(by_dict.state.values, by_packed.state.values)


def test_pack_powers_validates_and_accumulates():
    model = _model()
    ref = model.block_order[0]
    packed = model.pack_powers({ref: 1.5})
    assert packed[0] == 1.5 and packed[1:].sum() == 0.0
    with pytest.raises(KeyError):
        model.pack_powers({("nope", "nothing"): 1.0})
    with pytest.raises(ValueError):
        model.pack_powers({ref: -2.0})
    with pytest.raises(ValueError):
        model.power_vector_packed(np.zeros(len(model.block_order) + 1))


# ---------------------------------------------------------------------------
# configurable LU cache sizes (REPRO_LU_CACHE_SIZE)
# ---------------------------------------------------------------------------


def test_lu_cache_size_env_overrides_defaults(monkeypatch):
    from repro.obs.metrics import get_registry
    from repro.thermal.model import LU_CACHE_SIZE_ENV, lu_cache_size

    monkeypatch.delenv(LU_CACHE_SIZE_ENV, raising=False)
    assert lu_cache_size(8) == 8
    monkeypatch.setenv(LU_CACHE_SIZE_ENV, "3")
    assert lu_cache_size(8) == 3 and lu_cache_size(16) == 3

    model = _model()
    assert model.steady_cache_info().maxsize == 3
    stepper = TransientStepper(model, 0.1, model.uniform_field(300.0))
    assert stepper.cache_info().maxsize == 3
    registry = get_registry()
    assert registry.gauge("thermal.steady_cache.maxsize").value == 3
    assert registry.gauge("thermal.transient_cache.maxsize").value == 3


def test_lu_cache_size_explicit_argument_wins(monkeypatch):
    from repro.thermal.model import LU_CACHE_SIZE_ENV

    monkeypatch.setenv(LU_CACHE_SIZE_ENV, "3")
    model = _model(max_steady_factors=5)
    assert model.steady_cache_info().maxsize == 5
    stepper = TransientStepper(
        model, 0.1, model.uniform_field(300.0), max_cached_factors=7
    )
    assert stepper.cache_info().maxsize == 7


@pytest.mark.parametrize("raw", ["0", "-2", "junk", ""])
def test_lu_cache_size_rejects_bad_env(monkeypatch, raw):
    from repro.thermal.model import LU_CACHE_SIZE_ENV, lu_cache_size

    monkeypatch.setenv(LU_CACHE_SIZE_ENV, raw)
    assert lu_cache_size(8) == 8


def test_cache_occupancy_gauges_track_inserts_and_evictions():
    from repro.obs.metrics import get_registry

    registry = get_registry()
    model = _model(max_steady_factors=1)
    powers = _powers(model)
    model.steady_state(powers)
    assert registry.gauge("thermal.steady_cache.currsize").value == 1
    model.set_flow(model.flow_ml_min / 2.0)
    model.steady_state(powers)
    # One-slot cache: eviction keeps occupancy at the bound.
    assert registry.gauge("thermal.steady_cache.currsize").value == 1
    model.clear_steady_cache()
    assert registry.gauge("thermal.steady_cache.currsize").value == 0

    stepper = TransientStepper(
        model, 0.1, model.uniform_field(300.0), max_cached_factors=2
    )
    stepper.step(powers)
    assert registry.gauge("thermal.transient_cache.currsize").value == 1
