"""Pin-fin array geometry."""

import math

import pytest

from repro.geometry import PinFinArray, PinShape, PinArrangement


def make_array(arrangement=PinArrangement.INLINE, shape=PinShape.CIRCULAR):
    return PinFinArray(
        shape=shape,
        arrangement=arrangement,
        diameter=50e-6,
        transverse_pitch=150e-6,
        longitudinal_pitch=150e-6,
        height=100e-6,
    )


def test_circular_cross_section():
    a = make_array()
    assert a.pin_cross_section == pytest.approx(math.pi * (50e-6) ** 2 / 4.0)


def test_square_cross_section_larger_than_circular():
    circ = make_array(shape=PinShape.CIRCULAR)
    square = make_array(shape=PinShape.SQUARE)
    assert square.pin_cross_section > circ.pin_cross_section


def test_porosity_in_unit_interval():
    a = make_array()
    assert 0.0 < a.porosity < 1.0
    expected = 1.0 - a.pin_cross_section / (150e-6 * 150e-6)
    assert a.porosity == pytest.approx(expected)


def test_max_velocity_ratio_inline():
    a = make_array()
    # Transverse gap = 100 um of 150 um pitch -> ratio 1.5.
    assert a.max_velocity_ratio == pytest.approx(1.5)


def test_staggered_ratio_at_least_inline():
    inline = make_array(PinArrangement.INLINE)
    staggered = make_array(PinArrangement.STAGGERED)
    assert staggered.max_velocity_ratio >= inline.max_velocity_ratio


def test_drop_shape_has_lowest_drag_factor():
    drags = {
        shape: make_array(shape=shape).drag_shape_factor
        for shape in (PinShape.DROP, PinShape.CIRCULAR, PinShape.SQUARE)
    }
    assert drags[PinShape.DROP] < drags[PinShape.CIRCULAR] < drags[PinShape.SQUARE]


def test_rows_over_length():
    a = make_array()
    assert a.rows_over(1.5e-3) == 10
    with pytest.raises(ValueError):
        a.rows_over(0.0)


def test_velocity_from_flow():
    a = make_array()
    span = 10e-3
    q = 1e-6 / 60.0  # 1 ml/min
    expected = q / (span * a.height)
    assert a.velocity(q, span) == pytest.approx(expected)


def test_hydraulic_diameter_positive_and_small():
    a = make_array()
    assert 0.0 < a.hydraulic_diameter < 2 * a.height


def test_touching_pins_rejected():
    with pytest.raises(ValueError):
        PinFinArray(
            shape=PinShape.CIRCULAR,
            arrangement=PinArrangement.INLINE,
            diameter=150e-6,
            transverse_pitch=150e-6,
            longitudinal_pitch=300e-6,
            height=100e-6,
        )
