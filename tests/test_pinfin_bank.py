"""Pin-fin bank pressure drop and heat transfer (Section II-C claims)."""

import pytest

from repro.geometry import PinFinArray, PinShape, PinArrangement
from repro.hydraulics import pinfin_pressure_drop, pinfin_htc
from repro.hydraulics.pinfin_bank import pinfin_footprint_htc
from repro.materials import WATER
from repro.units import ml_per_min_to_m3_per_s

SPAN = 10e-3
LENGTH = 11.5e-3
FLOW = ml_per_min_to_m3_per_s(20.0)


def make(arrangement, shape=PinShape.CIRCULAR, diameter=50e-6):
    return PinFinArray(
        shape=shape,
        arrangement=arrangement,
        diameter=diameter,
        transverse_pitch=150e-6,
        longitudinal_pitch=150e-6,
        height=100e-6,
    )


def test_staggered_has_higher_pressure_drop():
    """The paper's conclusion: in-line pins give lower pressure drop."""
    inline = pinfin_pressure_drop(make(PinArrangement.INLINE), FLOW, LENGTH, SPAN, WATER)
    staggered = pinfin_pressure_drop(
        make(PinArrangement.STAGGERED), FLOW, LENGTH, SPAN, WATER
    )
    assert staggered > inline
    assert 1.2 < staggered / inline < 3.0


def test_staggered_has_higher_htc_but_less_than_pressure_penalty():
    """'Acceptable convective heat transfer' at much lower pressure."""
    h_inline = pinfin_htc(make(PinArrangement.INLINE), FLOW, SPAN, WATER)
    h_staggered = pinfin_htc(make(PinArrangement.STAGGERED), FLOW, SPAN, WATER)
    dp_inline = pinfin_pressure_drop(make(PinArrangement.INLINE), FLOW, LENGTH, SPAN, WATER)
    dp_staggered = pinfin_pressure_drop(
        make(PinArrangement.STAGGERED), FLOW, LENGTH, SPAN, WATER
    )
    htc_gain = h_staggered / h_inline
    dp_penalty = dp_staggered / dp_inline
    assert htc_gain > 1.0
    assert dp_penalty > htc_gain  # the trade favours in-line


def test_drop_pins_reduce_pressure_drop():
    circ = pinfin_pressure_drop(
        make(PinArrangement.INLINE, PinShape.CIRCULAR), FLOW, LENGTH, SPAN, WATER
    )
    drop = pinfin_pressure_drop(
        make(PinArrangement.INLINE, PinShape.DROP), FLOW, LENGTH, SPAN, WATER
    )
    square = pinfin_pressure_drop(
        make(PinArrangement.INLINE, PinShape.SQUARE), FLOW, LENGTH, SPAN, WATER
    )
    assert drop < circ < square


def test_pressure_drop_zero_at_zero_flow():
    assert pinfin_pressure_drop(make(PinArrangement.INLINE), 0.0, LENGTH, SPAN, WATER) == 0.0


def test_htc_increases_with_flow():
    a = make(PinArrangement.INLINE)
    assert pinfin_htc(a, 2 * FLOW, SPAN, WATER) > pinfin_htc(a, FLOW, SPAN, WATER)


def test_htc_scales_as_sqrt_flow():
    a = make(PinArrangement.INLINE)
    ratio = pinfin_htc(a, 4 * FLOW, SPAN, WATER) / pinfin_htc(a, FLOW, SPAN, WATER)
    assert ratio == pytest.approx(2.0, rel=1e-6)


def test_footprint_htc_exceeds_pin_htc_times_porosity():
    a = make(PinArrangement.INLINE)
    h_pin = pinfin_htc(a, FLOW, SPAN, WATER)
    h_fp = pinfin_footprint_htc(a, FLOW, SPAN, WATER)
    assert h_fp > h_pin * a.porosity


def test_invalid_inputs_rejected():
    a = make(PinArrangement.INLINE)
    with pytest.raises(ValueError):
        pinfin_htc(a, 0.0, SPAN, WATER)
    with pytest.raises(ValueError):
        pinfin_pressure_drop(a, -1.0, LENGTH, SPAN, WATER)
    with pytest.raises(ValueError):
        pinfin_footprint_htc(a, FLOW, SPAN, WATER, fin_efficiency=1.5)
