"""Thermally-aware workload placement."""

import pytest

from repro.design import (
    core_coolness_ranking,
    naive_assignment,
    placement_gain,
    thermal_aware_assignment,
)
from repro.geometry import build_3d_mpsoc
from repro.thermal import BlockThermalModel


@pytest.fixture(scope="module")
def model():
    return BlockThermalModel(build_3d_mpsoc(2))


def test_ranking_covers_all_cores(model):
    ranking = core_coolness_ranking(model)
    assert len(ranking) == 8
    assert len(set(ranking)) == 8


def test_ranking_is_demand_independent(model):
    a = core_coolness_ranking(model, probe_power=3.0)
    b = core_coolness_ranking(model, probe_power=6.0)
    assert a == b


def test_upstream_cores_run_cooler(model):
    """Coolant flows along +x: the cores nearest the inlet must rank
    cooler than their outlet-side mirror images."""
    ranking = core_coolness_ranking(model)
    position = {ref: i for i, ref in enumerate(ranking)}
    # core0 (x = 0.5 mm) vs core3 (x = 8 mm), same row, same tier.
    assert position[("tier0_die", "core0")] < position[("tier0_die", "core3")]


def test_aware_assignment_puts_heavy_demand_on_cool_slot(model):
    demands = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
    powers = thermal_aware_assignment(model, demands)
    coolest = core_coolness_ranking(model)[0]
    assert powers[coolest] == max(powers.values())


def test_aware_never_worse_than_naive(model):
    for demands in (
        [1.0, 1.0, 0.1, 0.1, 0.1, 0.1, 1.0, 1.0],
        [0.9, 0.1] * 4,
        [0.5] * 8,
    ):
        naive_peak, aware_peak = placement_gain(model, demands)
        assert aware_peak <= naive_peak + 1e-9


def test_skewed_demand_shows_real_gain(model):
    # Two hot threads, six idle cores: placement is worth a measurable
    # fraction of a kelvin even on the small 2-tier stack.
    naive_peak, aware_peak = placement_gain(
        model, [1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
    )
    assert naive_peak - aware_peak > 0.1


def test_uniform_demand_is_placement_invariant(model):
    naive_peak, aware_peak = placement_gain(model, [0.6] * 8)
    assert aware_peak == pytest.approx(naive_peak, abs=1e-6)


def test_total_power_preserved(model):
    demands = [0.9, 0.3, 0.7, 0.1, 0.5, 0.2, 0.8, 0.4]
    naive = naive_assignment(model, demands)
    aware = thermal_aware_assignment(model, demands)
    assert sum(aware.values()) == pytest.approx(sum(naive.values()))


def test_validation(model):
    with pytest.raises(ValueError):
        thermal_aware_assignment(model, [0.5] * 9)
    with pytest.raises(ValueError):
        thermal_aware_assignment(model, [1.5])
    with pytest.raises(ValueError):
        naive_assignment(model, [-0.1])
    with pytest.raises(ValueError):
        core_coolness_ranking(model, probe_power=0.0)
