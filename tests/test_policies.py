"""The four management policies."""

import pytest

from repro import constants
from repro.core import (
    AirLoadBalancing,
    AirTDVFSLoadBalancing,
    LiquidLoadBalancing,
    LiquidFuzzy,
    paper_policies,
)
from repro.geometry import CoolingMode
from repro.units import celsius_to_kelvin


def observations(temp_c=60.0, util=0.5):
    temps = {f"c{i}": celsius_to_kelvin(temp_c) for i in range(4)}
    utils = {f"c{i}": util for i in range(4)}
    return temps, utils


def test_paper_policy_names_match_figures():
    names = [p.name for p in paper_policies()]
    assert names == ["AC_LB", "AC_TDVFS_LB", "LC_LB", "LC_FUZZY"]


def test_cooling_modes():
    policies = paper_policies()
    assert policies[0].cooling is CoolingMode.AIR
    assert policies[1].cooling is CoolingMode.AIR
    assert policies[2].cooling is CoolingMode.LIQUID
    assert policies[3].cooling is CoolingMode.LIQUID


def test_ac_lb_is_passive():
    temps, utils = observations(90.0, 1.0)
    decision = AirLoadBalancing().decide(0.0, temps, utils)
    assert decision.flow_ml_min is None
    assert all(v == 0 for v in decision.vf_settings.values())


def test_ac_tdvfs_throttles_above_threshold():
    temps, utils = observations(88.0, 1.0)
    decision = AirTDVFSLoadBalancing().decide(0.0, temps, utils)
    assert decision.flow_ml_min is None
    assert all(v == 1 for v in decision.vf_settings.values())


def test_ac_tdvfs_reset_between_runs():
    policy = AirTDVFSLoadBalancing()
    temps, utils = observations(88.0, 1.0)
    policy.decide(0.0, temps, utils)
    policy.reset()
    temps2, utils2 = observations(60.0, 1.0)
    decision = policy.decide(0.0, temps2, utils2)
    assert all(v == 0 for v in decision.vf_settings.values())


def test_lc_lb_pins_maximum_flow():
    temps, utils = observations(40.0, 0.0)
    decision = LiquidLoadBalancing().decide(0.0, temps, utils)
    assert decision.flow_ml_min == pytest.approx(constants.FLOW_RATE_MAX_ML_MIN)
    assert all(v == 0 for v in decision.vf_settings.values())


def test_lc_fuzzy_modulates_flow():
    policy = LiquidFuzzy()
    cool_temps, idle_utils = observations(45.0, 0.05)
    hot_temps, busy_utils = observations(78.0, 0.9)
    low = policy.decide(0.0, cool_temps, idle_utils)
    policy.reset()
    high = policy.decide(0.0, hot_temps, busy_utils)
    assert low.flow_ml_min < high.flow_ml_min


def test_lc_lb_rejects_invalid_flow():
    with pytest.raises(ValueError):
        LiquidLoadBalancing(flow_ml_min=0.0)


def test_fresh_instances_every_call():
    a = paper_policies()
    b = paper_policies()
    assert all(x is not y for x, y in zip(a, b))
