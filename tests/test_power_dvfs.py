"""DVFS operating points and scaling factors."""

import pytest

from repro.power import OperatingPoint, VFTable, NIAGARA_VF_TABLE


def test_niagara_nominal_point():
    # [13]: UltraSPARC T1 at 1.2 GHz / 1.2 V (90 nm).
    nominal = NIAGARA_VF_TABLE.nominal
    assert nominal.frequency_hz == pytest.approx(1.2e9)
    assert nominal.voltage == pytest.approx(1.2)


def test_speed_fraction_monotone():
    fractions = [
        NIAGARA_VF_TABLE.speed_fraction(i) for i in range(len(NIAGARA_VF_TABLE))
    ]
    assert fractions[0] == 1.0
    assert all(b < a for a, b in zip(fractions, fractions[1:]))


def test_dynamic_scale_is_f_v_squared():
    table = NIAGARA_VF_TABLE
    point = table[2]
    nominal = table.nominal
    expected = (point.frequency_hz / nominal.frequency_hz) * (
        point.voltage / nominal.voltage
    ) ** 2
    assert table.dynamic_scale(2) == pytest.approx(expected)


def test_dynamic_savings_exceed_speed_loss():
    """Cubic-versus-linear: the energy argument behind DVFS."""
    table = NIAGARA_VF_TABLE
    for i in range(1, len(table)):
        assert table.dynamic_scale(i) < table.speed_fraction(i)


def test_leakage_scale_tracks_voltage():
    table = NIAGARA_VF_TABLE
    assert table.leakage_scale(0) == 1.0
    assert table.leakage_scale(table.lowest_index) == pytest.approx(0.9 / 1.2)


def test_clamp():
    table = NIAGARA_VF_TABLE
    assert table.clamp(-5) == 0
    assert table.clamp(99) == table.lowest_index


def test_table_requires_descending_frequency():
    with pytest.raises(ValueError):
        VFTable(
            [
                OperatingPoint(1.0e9, 1.1),
                OperatingPoint(1.2e9, 1.2),
            ]
        )


def test_empty_table_rejected():
    with pytest.raises(ValueError):
        VFTable([])


def test_invalid_operating_point():
    with pytest.raises(ValueError):
        OperatingPoint(0.0, 1.0)
    with pytest.raises(ValueError):
        OperatingPoint(1e9, -1.0)
