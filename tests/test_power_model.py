"""Block-level power model."""

import pytest

from repro.power import PowerModel
from repro.units import celsius_to_kelvin


@pytest.fixture()
def power_model(liquid_stack_2tier):
    return PowerModel(liquid_stack_2tier)


def full_util(model, level=1.0):
    return {ref: level for ref in model.core_refs}


def test_core_refs_enumerated(power_model):
    assert len(power_model.core_refs) == 8


def test_two_state_dynamic_model(power_model):
    """Section IV-A: dynamic power equals the average power of the state
    (active, idle) — linear interpolation in the utilisation."""
    idle = power_model.core_dynamic_power(0.0, 0)
    half = power_model.core_dynamic_power(0.5, 0)
    busy = power_model.core_dynamic_power(1.0, 0)
    assert half == pytest.approx(0.5 * (idle + busy))
    assert idle == pytest.approx(0.7, rel=1e-6)
    assert busy == pytest.approx(4.2, rel=1e-6)


def test_dvfs_reduces_core_dynamic_power(power_model):
    nominal = power_model.core_dynamic_power(1.0, 0)
    slow = power_model.core_dynamic_power(1.0, 3)
    assert slow < 0.5 * nominal


def test_chip_power_magnitude_at_high_load(power_model):
    """Section II-D: a 2-tier 3D MPSoC consumes ~70 W."""
    temps = {}  # defaults
    breakdown = power_model.breakdown(full_util(power_model, 0.95), {}, temps)
    assert 45.0 < breakdown.total < 80.0


def test_idle_floor_positive(power_model):
    breakdown = power_model.breakdown(full_util(power_model, 0.0))
    assert breakdown.total > 5.0  # idle + leakage floor
    assert breakdown.dynamic > 0.0


def test_leakage_rises_with_temperature(power_model):
    cool = {ref: celsius_to_kelvin(40.0) for ref in power_model.core_refs}
    hot = {ref: celsius_to_kelvin(90.0) for ref in power_model.core_refs}
    b_cool = power_model.breakdown(full_util(power_model), {}, cool)
    b_hot = power_model.breakdown(full_util(power_model), {}, hot)
    assert b_hot.leakage > b_cool.leakage
    assert b_hot.dynamic == pytest.approx(b_cool.dynamic)


def test_block_powers_cover_all_blocks(power_model, liquid_stack_2tier):
    powers = power_model.block_powers(full_util(power_model, 0.5))
    assert set(powers) == set(liquid_stack_2tier.block_refs())
    assert all(p > 0.0 for p in powers.values())


def test_block_powers_sum_matches_breakdown(power_model):
    utils = full_util(power_model, 0.6)
    total = sum(power_model.block_powers(utils).values())
    breakdown = power_model.breakdown(utils)
    assert total == pytest.approx(breakdown.total, rel=1e-12)


def test_shared_blocks_track_mean_utilisation(power_model):
    low = power_model.block_powers(full_util(power_model, 0.1))
    high = power_model.block_powers(full_util(power_model, 0.9))
    crossbar = ("tier0_die", "crossbar")
    assert high[crossbar] > low[crossbar]


def test_dvfs_per_core_settings(power_model):
    utils = full_util(power_model, 1.0)
    target = power_model.core_refs[0]
    throttled = power_model.block_powers(utils, {target: 3})
    nominal = power_model.block_powers(utils)
    assert throttled[target] < nominal[target]
    other = power_model.core_refs[1]
    assert throttled[other] == pytest.approx(nominal[other])


def test_missing_core_utilisation_rejected(power_model):
    utils = full_util(power_model)
    utils.pop(power_model.core_refs[0])
    with pytest.raises(KeyError):
        power_model.block_powers(utils)


def test_out_of_range_utilisation_rejected(power_model):
    utils = full_util(power_model)
    utils[power_model.core_refs[0]] = 1.5
    with pytest.raises(ValueError):
        power_model.block_powers(utils)


def test_stack_without_cores_rejected():
    from repro.geometry import StackDesign, Layer, cache_tier_floorplan
    from repro.geometry.niagara import DIE_WIDTH, DIE_HEIGHT
    from repro.materials import SILICON

    stack = StackDesign(
        name="cache only",
        width=DIE_WIDTH,
        height=DIE_HEIGHT,
        elements=[
            Layer("die", SILICON, 1e-4, floorplan=cache_tier_floorplan())
        ],
    )
    with pytest.raises(ValueError):
        PowerModel(stack)
