"""Pumping-network power model (Table I endpoints)."""

import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.hydraulics import PumpModel, TABLE_I_PUMP


def test_table_i_endpoints():
    assert TABLE_I_PUMP.power(10.0, 1) == pytest.approx(3.5)
    assert TABLE_I_PUMP.power(32.3, 1) == pytest.approx(11.176)


def test_paper_headline_saving_is_built_in():
    # Abstract: "up to 67 % reduction in cooling energy" — precisely the
    # min/max pump-power ratio of the Table I endpoints.
    saving = TABLE_I_PUMP.max_saving_fraction()
    assert saving == pytest.approx(1.0 - 3.5 / 11.176)
    assert 0.67 <= saving <= 0.70


def test_power_scales_with_cavity_count():
    one = TABLE_I_PUMP.power(20.0, 1)
    three = TABLE_I_PUMP.power(20.0, 3)
    assert three == pytest.approx(3 * one)


@given(st.floats(10.0, 32.3))
def test_power_monotone_in_flow(flow):
    eps = 0.01
    if flow + eps <= 32.3:
        assert TABLE_I_PUMP.power(flow + eps, 1) > TABLE_I_PUMP.power(flow, 1)


@given(st.floats(-50.0, 100.0))
def test_clamp_respects_range(flow):
    clamped = TABLE_I_PUMP.clamp_flow(flow)
    assert constants.FLOW_RATE_MIN_ML_MIN <= clamped <= constants.FLOW_RATE_MAX_ML_MIN


def test_out_of_range_flow_rejected():
    with pytest.raises(ValueError):
        TABLE_I_PUMP.power(5.0, 1)
    with pytest.raises(ValueError):
        TABLE_I_PUMP.power(40.0, 1)


def test_invalid_cavities_rejected():
    with pytest.raises(ValueError):
        TABLE_I_PUMP.power(20.0, 0)


def test_invalid_model_parameters_rejected():
    with pytest.raises(ValueError):
        PumpModel(flow_min_ml_min=20.0, flow_max_ml_min=10.0)
    with pytest.raises(ValueError):
        PumpModel(power_min=12.0, power_max=11.0)
    with pytest.raises(ValueError):
        PumpModel(reference_cavities=0)


def test_nearly_proportional_endpoints():
    # The modelling note in the module docstring: the Table I endpoints
    # imply near-proportionality between flow and power.
    ratio_min = constants.PUMP_POWER_MIN / constants.FLOW_RATE_MIN_ML_MIN
    ratio_max = constants.PUMP_POWER_MAX / constants.FLOW_RATE_MAX_ML_MIN
    assert ratio_min == pytest.approx(ratio_max, rel=0.02)
