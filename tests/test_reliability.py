"""Thermal-reliability metrics."""

import math

import numpy as np
import pytest

from repro.analysis.reliability import (
    ThermalCycle,
    arrhenius_acceleration,
    coffin_manson_cycles_to_failure,
    extract_cycles,
    fatigue_damage_index,
    reliability_report,
)


# ---------------------------------------------------------------------------
# cycle counting
# ---------------------------------------------------------------------------


def test_constant_series_has_no_cycles():
    assert extract_cycles([70.0] * 50) == []


def test_single_square_pulse_counts_one_cycle():
    series = [60.0] * 5 + [80.0] * 5 + [60.0] * 5
    cycles = extract_cycles(series)
    assert len(cycles) == 1
    assert cycles[0].amplitude == pytest.approx(20.0)
    assert cycles[0].mean == pytest.approx(70.0)


def test_sinusoid_counts_period_cycles():
    t = np.linspace(0.0, 10.0, 1001)
    series = 70.0 + 10.0 * np.sin(2.0 * np.pi * t)  # 10 periods
    cycles = extract_cycles(series)
    big = [c for c in cycles if c.amplitude > 15.0]
    assert 9 <= len(big) <= 11
    for c in big:
        assert c.amplitude == pytest.approx(20.0, rel=0.05)


def test_small_ripple_filtered():
    t = np.linspace(0.0, 10.0, 1001)
    series = 70.0 + 0.2 * np.sin(2.0 * np.pi * t)
    assert extract_cycles(series, min_amplitude=0.5) == []


def test_nested_cycle_collapsed():
    # A small inner excursion inside one big swing: rainflow counts the
    # inner cycle separately and keeps the outer swing.
    series = [50.0, 80.0, 70.0, 75.0, 40.0]
    cycles = extract_cycles(series)
    amplitudes = sorted(c.amplitude for c in cycles)
    assert amplitudes[0] == pytest.approx(5.0)  # the 70->75 inner cycle
    assert amplitudes[-1] >= 30.0  # the big swing survives


# ---------------------------------------------------------------------------
# damage models
# ---------------------------------------------------------------------------


def test_coffin_manson_power_law():
    n10 = coffin_manson_cycles_to_failure(10.0)
    n20 = coffin_manson_cycles_to_failure(20.0)
    assert n10 / n20 == pytest.approx(2.0**2.35, rel=1e-9)


def test_bigger_swings_do_more_damage():
    small = fatigue_damage_index([ThermalCycle(5.0, 70.0)] * 10)
    large = fatigue_damage_index([ThermalCycle(20.0, 70.0)] * 10)
    assert large > small


def test_arrhenius_reference_point():
    assert arrhenius_acceleration(358.15) == pytest.approx(1.0)
    assert arrhenius_acceleration(368.15) > 1.0
    assert arrhenius_acceleration(338.15) < 1.0


def test_arrhenius_doubling_scale():
    # With Ea = 0.7 eV wear roughly doubles every ~10 K near 85 degC.
    ratio = arrhenius_acceleration(368.15) / arrhenius_acceleration(358.15)
    assert 1.5 < ratio < 2.5


# ---------------------------------------------------------------------------
# report + integration
# ---------------------------------------------------------------------------


def test_report_fields():
    t = np.linspace(0.0, 30.0, 301)
    series = 65.0 + 8.0 * np.sin(2.0 * np.pi * t / 10.0)
    report = reliability_report(series, dt=0.1)
    assert report["peak_c"] == pytest.approx(73.0, abs=0.1)
    assert report["cycle_count"] >= 2
    assert report["max_cycle_amplitude_k"] == pytest.approx(16.0, rel=0.05)
    assert report["fatigue_damage"] > 0.0


def test_cooler_policy_has_lower_acceleration():
    hot = reliability_report([85.0] * 100, dt=0.1)
    cool = reliability_report([56.0] * 100, dt=0.1)
    assert (
        cool["mean_arrhenius_acceleration"]
        < hot["mean_arrhenius_acceleration"]
    )


def test_report_on_simulation_series():
    from repro.core import LiquidFuzzy, SystemSimulator
    from repro.geometry import build_3d_mpsoc
    from tests.conftest import make_constant_trace

    result = SystemSimulator(
        build_3d_mpsoc(2),
        LiquidFuzzy(),
        make_constant_trace(0.6),
        nx=12,
        ny=10,
        record_series=True,
    ).run()
    report = reliability_report(result.series["max_temperature_c"], dt=0.1)
    assert report["peak_c"] == pytest.approx(result.peak_temperature_c, abs=0.1)


def test_validation():
    with pytest.raises(ValueError):
        reliability_report([], dt=0.1)
    with pytest.raises(ValueError):
        reliability_report([70.0], dt=0.0)
    with pytest.raises(ValueError):
        coffin_manson_cycles_to_failure(0.0)
    with pytest.raises(ValueError):
        arrhenius_acceleration(-1.0)
