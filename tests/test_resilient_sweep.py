"""Resilient fan-out: isolation of raising, crashing and hanging jobs.

Worker functions live at module level so the process-pool paths can
pickle them.  The crash test kills its worker with ``os._exit`` — the
closest portable stand-in for a segfault or OOM kill.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.analysis import (
    SimulationJob,
    SweepOutcome,
    resilient_fan_out,
    run_simulations_resilient,
)
from repro.core.policies import LiquidLoadBalancing
from repro.geometry import CoolingMode, build_3d_mpsoc
from tests.conftest import make_constant_trace


def _square(x: int) -> int:
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x * x


def _exit_on_three(x: int) -> int:
    if x == 3:
        os._exit(13)  # kills the worker process outright
    return x * x


def _hang_on_three(x: int) -> int:
    if x == 3:
        time.sleep(60.0)
    return x * x


def _flaky_once(arg) -> int:
    marker, x = arg
    path = Path(marker)
    if not path.exists():
        path.write_text("tried")
        raise RuntimeError("transient failure")
    return x


def _count_runs(arg) -> int:
    directory, x = arg
    marker = Path(directory) / f"ran-{x}.txt"
    count = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(count + 1))
    if x == 2 and count == 0:
        raise RuntimeError("fails on its first ever attempt")
    return x


# ---------------------------------------------------------------------------
# basic contracts
# ---------------------------------------------------------------------------


def test_all_jobs_succeed_serial_matches_fan_out():
    outcome = resilient_fan_out(_square, range(5))
    assert isinstance(outcome, SweepOutcome)
    assert outcome.complete
    assert outcome.succeeded == outcome.total == 5
    assert outcome.results == [(i, i * i) for i in range(5)]
    assert outcome.raise_if_failed() is outcome


def test_keys_must_match_items():
    with pytest.raises(ValueError):
        resilient_fan_out(_square, range(3), keys=["only-one"])
    with pytest.raises(ValueError):
        resilient_fan_out(_square, range(3), retries=-1)


def test_raising_job_is_isolated_serial():
    outcome = resilient_fan_out(_fail_on_three, range(6), retries=1)
    assert not outcome.complete
    assert outcome.succeeded == 5
    assert sorted(value for _, value in outcome.results) == [0, 1, 4, 16, 25]
    (failure,) = outcome.failures
    assert failure.key == 3
    assert failure.phase == "exception"
    assert failure.error_type == "ValueError"
    assert failure.attempts == 2  # first try + one retry
    assert "bad item 3" in failure.traceback
    with pytest.raises(RuntimeError):
        outcome.raise_if_failed()


def test_raising_job_is_isolated_in_process_pool():
    outcome = resilient_fan_out(
        _fail_on_three, range(6), processes=2, retries=0
    )
    assert outcome.succeeded == 5
    (failure,) = outcome.failures
    assert failure.phase == "exception"
    assert failure.error_type == "ValueError"


def test_retry_rescues_a_transient_failure(tmp_path):
    marker = tmp_path / "first-attempt"
    outcome = resilient_fan_out(_flaky_once, [(str(marker), 7)], retries=1)
    assert outcome.complete
    assert outcome.results == [(0, 7)]


# ---------------------------------------------------------------------------
# worker death and hangs (acceptance: losing a worker loses one job)
# ---------------------------------------------------------------------------


def test_dying_worker_loses_only_its_own_job():
    outcome = resilient_fan_out(
        _exit_on_three, range(6), processes=2, retries=1
    )
    assert outcome.succeeded == 5
    assert outcome.result_map() == {
        i: i * i for i in range(6) if i != 3
    }
    (failure,) = outcome.failures
    assert failure.key == 3
    assert failure.phase == "worker-crash"
    assert failure.error_type == "BrokenProcessPool"


def test_hanging_job_times_out_while_siblings_complete():
    outcome = resilient_fan_out(
        _hang_on_three, range(5), processes=2, timeout_s=1.5, retries=0
    )
    assert outcome.succeeded == 4
    (failure,) = outcome.failures
    assert failure.key == 3
    assert failure.phase == "timeout"
    assert failure.error_type == "TimeoutError"


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------


def test_checkpoint_resume_skips_completed_jobs(tmp_path):
    checkpoint = tmp_path / "sweep.ckpt"
    jobs = [(str(tmp_path), x) for x in range(4)]

    first = resilient_fan_out(
        _count_runs, jobs, retries=0, checkpoint_path=checkpoint
    )
    assert first.succeeded == 3
    assert [f.key for f in first.failures] == [2]
    assert checkpoint.exists()

    second = resilient_fan_out(
        _count_runs, jobs, retries=0, checkpoint_path=checkpoint
    )
    assert second.complete
    assert sorted(value for _, value in second.results) == [0, 1, 2, 3]
    # Only the previously failed job was re-executed on resume.
    runs = {
        x: int((tmp_path / f"ran-{x}.txt").read_text()) for x in range(4)
    }
    assert runs == {0: 1, 1: 1, 2: 2, 3: 1}


def test_checkpoint_with_wrong_total_is_ignored(tmp_path):
    checkpoint = tmp_path / "stale.ckpt"
    resilient_fan_out(_square, range(3), checkpoint_path=checkpoint)
    outcome = resilient_fan_out(
        _square, range(5), checkpoint_path=checkpoint
    )
    assert outcome.complete
    assert outcome.total == 5


# ---------------------------------------------------------------------------
# simulation-job wrapper
# ---------------------------------------------------------------------------


def test_bad_simulation_job_fails_while_sibling_completes():
    liquid = build_3d_mpsoc(2, CoolingMode.LIQUID)
    air = build_3d_mpsoc(2, CoolingMode.AIR)
    trace = make_constant_trace(0.5, intervals=2)
    jobs = [
        SimulationJob(
            stack=liquid,
            policy=LiquidLoadBalancing(),
            trace=trace,
            key="good",
            kwargs={"nx": 12, "ny": 10},
        ),
        # A liquid policy on an air stack: the simulator constructor
        # rejects the mismatch, which must surface as a JobFailure.
        SimulationJob(
            stack=air,
            policy=LiquidLoadBalancing(),
            trace=trace,
            key="bad",
            kwargs={"nx": 12, "ny": 10},
        ),
    ]
    outcome = run_simulations_resilient(jobs, retries=0)
    assert outcome.succeeded == 1
    result_map = outcome.result_map()
    assert result_map["good"].peak_temperature_c > 0.0
    (failure,) = outcome.failures
    assert failure.key == "bad"
    assert failure.phase == "exception"
    assert failure.error_type == "ValueError"
