"""Resilient fan-out: isolation of raising, crashing and hanging jobs.

Worker functions live at module level so the process-pool paths can
pickle them.  The crash test kills its worker with ``os._exit`` — the
closest portable stand-in for a segfault or OOM kill.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import (
    SimulationJob,
    SweepOutcome,
    jittered_delay,
    resilient_fan_out,
    run_simulations_resilient,
)
from repro.core.policies import LiquidLoadBalancing
from repro.geometry import CoolingMode, build_3d_mpsoc
from repro.obs import get_registry
from tests.conftest import make_constant_trace


def _square(x: int) -> int:
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x * x


def _exit_on_three(x: int) -> int:
    if x == 3:
        os._exit(13)  # kills the worker process outright
    return x * x


def _hang_on_three(x: int) -> int:
    if x == 3:
        time.sleep(60.0)
    return x * x


def _flaky_once(arg) -> int:
    marker, x = arg
    path = Path(marker)
    if not path.exists():
        path.write_text("tried")
        raise RuntimeError("transient failure")
    return x


def _count_runs(arg) -> int:
    directory, x = arg
    marker = Path(directory) / f"ran-{x}.txt"
    count = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(count + 1))
    if x == 2 and count == 0:
        raise RuntimeError("fails on its first ever attempt")
    return x


def _interrupt_on_three(arg) -> int:
    directory, x = arg
    marker = Path(directory) / f"ran-{x}.txt"
    count = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(count + 1))
    if x == 3 and count == 0:
        raise KeyboardInterrupt()  # Ctrl-C mid-grid, first pass only
    return x * x


# ---------------------------------------------------------------------------
# basic contracts
# ---------------------------------------------------------------------------


def test_all_jobs_succeed_serial_matches_fan_out():
    outcome = resilient_fan_out(_square, range(5))
    assert isinstance(outcome, SweepOutcome)
    assert outcome.complete
    assert outcome.succeeded == outcome.total == 5
    assert outcome.results == [(i, i * i) for i in range(5)]
    assert outcome.raise_if_failed() is outcome


def test_keys_must_match_items():
    with pytest.raises(ValueError):
        resilient_fan_out(_square, range(3), keys=["only-one"])
    with pytest.raises(ValueError):
        resilient_fan_out(_square, range(3), retries=-1)


def test_raising_job_is_isolated_serial():
    outcome = resilient_fan_out(_fail_on_three, range(6), retries=1)
    assert not outcome.complete
    assert outcome.succeeded == 5
    assert sorted(value for _, value in outcome.results) == [0, 1, 4, 16, 25]
    (failure,) = outcome.failures
    assert failure.key == 3
    assert failure.phase == "exception"
    assert failure.error_type == "ValueError"
    assert failure.attempts == 2  # first try + one retry
    assert "bad item 3" in failure.traceback
    with pytest.raises(RuntimeError):
        outcome.raise_if_failed()


def test_raising_job_is_isolated_in_process_pool():
    outcome = resilient_fan_out(
        _fail_on_three, range(6), processes=2, retries=0
    )
    assert outcome.succeeded == 5
    (failure,) = outcome.failures
    assert failure.phase == "exception"
    assert failure.error_type == "ValueError"


def test_retry_rescues_a_transient_failure(tmp_path):
    marker = tmp_path / "first-attempt"
    outcome = resilient_fan_out(_flaky_once, [(str(marker), 7)], retries=1)
    assert outcome.complete
    assert outcome.results == [(0, 7)]


# ---------------------------------------------------------------------------
# worker death and hangs (acceptance: losing a worker loses one job)
# ---------------------------------------------------------------------------


def test_dying_worker_loses_only_its_own_job():
    outcome = resilient_fan_out(
        _exit_on_three, range(6), processes=2, retries=1
    )
    assert outcome.succeeded == 5
    assert outcome.result_map() == {
        i: i * i for i in range(6) if i != 3
    }
    (failure,) = outcome.failures
    assert failure.key == 3
    assert failure.phase == "worker-crash"
    assert failure.error_type == "BrokenProcessPool"


def test_hanging_job_times_out_while_siblings_complete():
    outcome = resilient_fan_out(
        _hang_on_three, range(5), processes=2, timeout_s=1.5, retries=0
    )
    assert outcome.succeeded == 4
    (failure,) = outcome.failures
    assert failure.key == 3
    assert failure.phase == "timeout"
    assert failure.error_type == "TimeoutError"


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------


def test_checkpoint_resume_skips_completed_jobs(tmp_path):
    checkpoint = tmp_path / "sweep.ckpt"
    jobs = [(str(tmp_path), x) for x in range(4)]

    first = resilient_fan_out(
        _count_runs, jobs, retries=0, checkpoint_path=checkpoint
    )
    assert first.succeeded == 3
    assert [f.key for f in first.failures] == [2]
    assert checkpoint.exists()

    second = resilient_fan_out(
        _count_runs, jobs, retries=0, checkpoint_path=checkpoint
    )
    assert second.complete
    assert sorted(value for _, value in second.results) == [0, 1, 2, 3]
    # Only the previously failed job was re-executed on resume.
    runs = {
        x: int((tmp_path / f"ran-{x}.txt").read_text()) for x in range(4)
    }
    assert runs == {0: 1, 1: 1, 2: 2, 3: 1}


def test_corrupt_checkpoint_is_a_counted_fresh_start(tmp_path):
    checkpoint = tmp_path / "sweep.ckpt"
    checkpoint.write_bytes(b"\x80\x04 definitely not a pickle")
    counter = get_registry().counter("sweep.checkpoint_corrupt")
    before = counter.value

    outcome = resilient_fan_out(
        _square, range(4), checkpoint_path=checkpoint
    )
    # Degrades to recomputation, never to a crash -- and not silently.
    assert outcome.complete
    assert counter.value == before + 1

    # The finished sweep overwrote the damage with a loadable file.
    payload = pickle.loads(checkpoint.read_bytes())
    assert payload["total"] == 4


def test_unpicklable_garbage_checkpoint_also_counts(tmp_path):
    checkpoint = tmp_path / "sweep.ckpt"
    checkpoint.write_bytes(pickle.dumps(["not", "a", "dict"]))
    counter = get_registry().counter("sweep.checkpoint_corrupt")
    before = counter.value
    outcome = resilient_fan_out(
        _square, range(2), checkpoint_path=checkpoint
    )
    assert outcome.complete
    assert counter.value == before + 1


def test_keyboard_interrupt_leaves_loadable_checkpoint(tmp_path):
    checkpoint = tmp_path / "sweep.ckpt"
    jobs = [(str(tmp_path), x) for x in range(6)]

    # checkpoint_every is huge: the only save is the interrupt flush.
    with pytest.raises(KeyboardInterrupt):
        resilient_fan_out(
            _interrupt_on_three,
            jobs,
            retries=0,
            checkpoint_path=checkpoint,
            checkpoint_every=1000,
        )
    payload = pickle.loads(checkpoint.read_bytes())
    assert sorted(payload["results"]) == [0, 1, 2]  # finished pre-Ctrl-C

    outcome = resilient_fan_out(
        _interrupt_on_three, jobs, retries=0, checkpoint_path=checkpoint
    )
    assert outcome.complete
    assert outcome.results == [(i, i * i) for i in range(6)]
    # The resumed run re-solved nothing that already finished.
    runs = {
        x: int((tmp_path / f"ran-{x}.txt").read_text()) for x in range(6)
    }
    assert runs == {0: 1, 1: 1, 2: 1, 3: 2, 4: 1, 5: 1}


_SIGTERM_SWEEP_SCRIPT = """
import signal, sys
from pathlib import Path
from repro.analysis import resilient_fan_out

# Graceful-shutdown convention: SIGTERM raises SystemExit, which the
# sweep's finally-flush turns into a durable checkpoint.
signal.signal(signal.SIGTERM, lambda *a: sys.exit(143))

directory = sys.argv[1]

def job(x):
    import time
    marker = Path(directory) / f"ran-{x}.txt"
    count = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(count + 1))
    if x >= 2:
        time.sleep(30.0)  # slow tail the parent will interrupt
    return x

resilient_fan_out(
    job,
    range(5),
    retries=0,
    checkpoint_path=Path(directory) / "sweep.ckpt",
    checkpoint_every=1000,
)
"""


def test_sigterm_mid_sweep_leaves_loadable_checkpoint(tmp_path):
    checkpoint = tmp_path / "sweep.ckpt"
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    process = subprocess.Popen(
        [sys.executable, "-c", _SIGTERM_SWEEP_SCRIPT, str(tmp_path)],
        env=env,
    )
    try:
        deadline = time.monotonic() + 60.0
        while not (tmp_path / "ran-2.txt").exists():
            assert process.poll() is None, "sweep died before the SIGTERM"
            assert time.monotonic() < deadline
            time.sleep(0.05)
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 143
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    # Jobs 0 and 1 completed before the interrupt and were flushed.
    payload = pickle.loads(checkpoint.read_bytes())
    assert sorted(payload["results"]) == [0, 1]
    assert payload["total"] == 5

    # Resume in-process: the slow sleep only guarded the first pass...
    jobs = [(str(tmp_path), x) for x in range(5)]
    outcome = resilient_fan_out(
        _count_runs, jobs, retries=0, checkpoint_path=checkpoint
    )
    # ...and the finished jobs were not re-solved (still one run each).
    assert outcome.complete
    runs = {
        x: int((tmp_path / f"ran-{x}.txt").read_text()) for x in range(5)
    }
    assert runs[0] == 1 and runs[1] == 1


# ---------------------------------------------------------------------------
# retry backoff jitter
# ---------------------------------------------------------------------------


def test_jittered_delay_bounds_and_cap():
    assert jittered_delay(0.0, 5) == 0.0
    assert jittered_delay(1.0, 3, jitter=0.0) == 4.0
    assert jittered_delay(1.0, 10, cap_s=8.0, jitter=0.0) == 8.0
    samples = {jittered_delay(1.0, 2, jitter=0.5) for _ in range(50)}
    assert len(samples) > 1
    assert all(1.0 <= s <= 3.0 for s in samples)


def test_backoff_jitter_never_goes_negative():
    import random

    rng = random.Random(7)
    assert all(
        jittered_delay(0.01, 1, jitter=1.0, rng=rng) >= 0.0
        for _ in range(200)
    )


def test_checkpoint_with_wrong_total_is_ignored(tmp_path):
    checkpoint = tmp_path / "stale.ckpt"
    resilient_fan_out(_square, range(3), checkpoint_path=checkpoint)
    outcome = resilient_fan_out(
        _square, range(5), checkpoint_path=checkpoint
    )
    assert outcome.complete
    assert outcome.total == 5


# ---------------------------------------------------------------------------
# simulation-job wrapper
# ---------------------------------------------------------------------------


def test_bad_simulation_job_fails_while_sibling_completes():
    liquid = build_3d_mpsoc(2, CoolingMode.LIQUID)
    air = build_3d_mpsoc(2, CoolingMode.AIR)
    trace = make_constant_trace(0.5, intervals=2)
    jobs = [
        SimulationJob(
            stack=liquid,
            policy=LiquidLoadBalancing(),
            trace=trace,
            key="good",
            kwargs={"nx": 12, "ny": 10},
        ),
        # A liquid policy on an air stack: the simulator constructor
        # rejects the mismatch, which must surface as a JobFailure.
        SimulationJob(
            stack=air,
            policy=LiquidLoadBalancing(),
            trace=trace,
            key="bad",
            kwargs={"nx": 12, "ny": 10},
        ),
    ]
    outcome = run_simulations_resilient(jobs, retries=0)
    assert outcome.succeeded == 1
    result_map = outcome.result_map()
    assert result_map["good"].peak_temperature_c > 0.0
    (failure,) = outcome.failures
    assert failure.key == "bad"
    assert failure.phase == "exception"
    assert failure.error_type == "ValueError"
