"""Certified reduced-order fast path: accuracy, fallback, persistence."""

import pickle

import numpy as np
import pytest

from repro.geometry import CoolingMode, build_3d_mpsoc
from repro.obs.metrics import get_registry
from repro.scenario import (
    ControlSpec,
    PolicySpec,
    ResultCache,
    Runner,
    RomSpec,
    Scenario,
    ScenarioError,
    SolverSpec,
    StackSpec,
    WorkloadSpec,
)
from repro.thermal import CompactThermalModel, TransientStepper
from repro.thermal.rom import (
    ROM_FORMAT_VERSION,
    RomOptions,
    RomRejection,
    RomStore,
    build_rom_basis,
)

NX, NY = 12, 10
IN_TRUST_FLOW = 20.0
OUT_OF_TRUST_FLOW = 5.0
# A reduced offline budget keeps the build well under a second on the
# coarse test grid while leaving the certification machinery intact.
OPTS = RomOptions(
    flow_points=5,
    max_modes=128,
    validation_queries=4,
    transient_calibration_steps=10,
    transient_snapshots=10,
)


@pytest.fixture(scope="module")
def stack():
    return build_3d_mpsoc(2, CoolingMode.LIQUID)


@pytest.fixture(scope="module")
def rom_model(stack):
    model = CompactThermalModel(stack, nx=NX, ny=NY, solver="rom", rom=OPTS)
    return model


@pytest.fixture(scope="module")
def exact_model(stack):
    return CompactThermalModel(stack, nx=NX, ny=NY, solver="direct")


def _powers(stack, scale=1.0):
    powers = {}
    for layer, block in stack.iter_blocks():
        if block.kind == "core":
            powers[(layer.name, block.name)] = 5.0 * scale
        elif block.kind == "cache":
            powers[(layer.name, block.name)] = 1.5 * scale
    return powers


def _counter(name):
    return get_registry().counter(name).value


def test_steady_rom_is_certified_and_accurate(rom_model, exact_model, stack):
    rom_model.set_flow(IN_TRUST_FLOW)
    exact_model.set_flow(IN_TRUST_FLOW)
    powers = _powers(stack)
    field = rom_model.steady_state(powers)
    reference = exact_model.steady_state(powers)
    diagnostics = rom_model.last_steady_diagnostics
    assert diagnostics.method == "rom"
    bound = diagnostics.residual_norm
    error = float(np.max(np.abs(field.values - reference.values)))
    assert error <= bound <= OPTS.tolerance_k


def test_steady_block_temps_fast_path(rom_model, exact_model, stack):
    rom_model.set_flow(IN_TRUST_FLOW)
    exact_model.set_flow(IN_TRUST_FLOW)
    powers = _powers(stack)
    rom = rom_model.ensure_rom()
    packed = rom_model.pack_powers(powers)
    flow, rate = rom_model.rom_flow(None)
    block_temps, bound = rom.steady_block_temps(
        packed, flow, capacity_rate=rate
    )
    reference = exact_model.steady_state(powers)
    means = reference.block_temperatures(
        exact_model.block_masks(), reduce="mean"
    )
    exact_means = np.array([means[ref] for ref in rom_model.block_order])
    assert np.max(np.abs(block_temps - exact_means)) <= bound


def test_out_of_trust_flow_falls_back_bitwise(rom_model, exact_model, stack):
    powers = _powers(stack)
    rom_model.set_flow(OUT_OF_TRUST_FLOW)
    exact_model.set_flow(OUT_OF_TRUST_FLOW)
    fallbacks = _counter("rom.fallback")
    rejected = _counter("rom.trust_rejected")
    field = rom_model.steady_state(powers)
    reference = exact_model.steady_state(powers)
    assert rom_model.last_steady_diagnostics.method == "direct"
    assert np.array_equal(field.values, reference.values)
    assert _counter("rom.fallback") == fallbacks + 1
    assert _counter("rom.trust_rejected") == rejected + 1


def test_nonuniform_cavity_flows_fall_back():
    # Per-cavity imbalance needs at least two cavities: use 4 tiers.
    stack4 = build_3d_mpsoc(4, CoolingMode.LIQUID)
    model = CompactThermalModel(stack4, nx=NX, ny=NY, solver="rom", rom=OPTS)
    exact = CompactThermalModel(stack4, nx=NX, ny=NY, solver="direct")
    powers = _powers(stack4)
    model.set_flow(IN_TRUST_FLOW)
    exact.set_flow(IN_TRUST_FLOW)
    cavity = next(iter(model.cavity_flows))
    model.set_cavity_flow(cavity, IN_TRUST_FLOW + 4.0)
    exact.set_cavity_flow(cavity, IN_TRUST_FLOW + 4.0)
    fallbacks = _counter("rom.fallback")
    field = model.steady_state(powers)
    reference = exact.steady_state(powers)
    assert model.last_steady_diagnostics.method == "direct"
    assert np.array_equal(field.values, reference.values)
    assert _counter("rom.fallback") == fallbacks + 1


def test_transient_rom_steps_are_certified(rom_model, exact_model, stack):
    powers = _powers(stack)
    rom_model.set_flow(IN_TRUST_FLOW)
    exact_model.set_flow(IN_TRUST_FLOW)
    init = exact_model.steady_state(_powers(stack, scale=0.8))
    rom_stepper = TransientStepper(rom_model, 0.1, init)
    exact_stepper = TransientStepper(exact_model, 0.1, init)
    rom_steps = _counter("rom.transient_steps")
    for _ in range(10):
        rom_stepper.step(powers)
        exact_stepper.step(powers)
    diagnostics = rom_stepper.last_diagnostics
    assert diagnostics.method == "rom"
    assert _counter("rom.transient_steps") >= rom_steps + 10
    error = float(
        np.max(np.abs(rom_stepper.state.values - exact_stepper.state.values))
    )
    assert error <= diagnostics.residual_norm <= OPTS.tolerance_k


def test_transient_fallback_is_bitwise_and_recovers(
    rom_model, exact_model, stack
):
    powers = _powers(stack)
    rom_model.set_flow(IN_TRUST_FLOW)
    exact_model.set_flow(IN_TRUST_FLOW)
    init = exact_model.steady_state(_powers(stack, scale=0.8))
    stepper = TransientStepper(rom_model, 0.1, init)
    for _ in range(5):
        stepper.step(powers)
    assert stepper.last_diagnostics.method == "rom"

    # Leave the trust region: the rejected step must equal an exact
    # step taken from the identical pre-step state.
    rom_model.set_flow(OUT_OF_TRUST_FLOW)
    exact_model.set_flow(OUT_OF_TRUST_FLOW)
    twin = TransientStepper(exact_model, 0.1, stepper.state)
    fallbacks = _counter("rom.fallback")
    state = stepper.step(powers)
    reference = twin.step(powers)
    assert stepper.last_diagnostics.method == "direct"
    assert np.array_equal(state.values, reference.values)
    assert _counter("rom.fallback") == fallbacks + 1

    # Back in trust the stepper re-syncs and re-engages once the exact
    # steps have damped the unrepresentable excursion content.
    rom_model.set_flow(IN_TRUST_FLOW)
    methods = []
    for _ in range(8):
        stepper.step(powers)
        methods.append(stepper.last_diagnostics.method)
    assert methods[-1] == "rom"


def test_transient_dt_mismatch_falls_back(rom_model, exact_model, stack):
    powers = _powers(stack)
    rom_model.set_flow(IN_TRUST_FLOW)
    exact_model.set_flow(IN_TRUST_FLOW)
    init = exact_model.steady_state(powers)
    stepper = TransientStepper(rom_model, 0.05, init)
    fallbacks = _counter("rom.fallback")
    stepper.step(powers)
    assert stepper.last_diagnostics.method == "direct"
    assert _counter("rom.fallback") == fallbacks + 1


def test_rejection_reasons_reported(rom_model, stack):
    rom = rom_model.ensure_rom()
    with pytest.raises(RomRejection) as excinfo:
        rom.check_flow(OUT_OF_TRUST_FLOW)
    assert excinfo.value.reason == "flow-range"
    with pytest.raises(RomRejection) as excinfo:
        rom.check_flow(None)
    assert excinfo.value.reason == "flow-nonuniform"
    with pytest.raises(RomRejection) as excinfo:
        rom.stepper(0.25, np.zeros(rom.basis.n_nodes))
    assert excinfo.value.reason == "dt"


def test_air_stack_rom_has_no_flow_axis():
    stack = build_3d_mpsoc(2, CoolingMode.AIR)
    model = CompactThermalModel(stack, nx=NX, ny=NY, solver="rom", rom=OPTS)
    exact = CompactThermalModel(stack, nx=NX, ny=NY, solver="direct")
    powers = _powers(stack)
    field = model.steady_state(powers)
    reference = exact.steady_state(powers)
    diagnostics = model.last_steady_diagnostics
    assert diagnostics.method == "rom"
    assert not model.ensure_rom().basis.has_flow
    error = float(np.max(np.abs(field.values - reference.values)))
    assert error <= diagnostics.residual_norm <= OPTS.tolerance_k


def test_store_round_trip_and_corruption(tmp_path, rom_model):
    basis = rom_model.ensure_rom().basis
    store = RomStore(tmp_path)
    assert store.get("key") is None
    path = store.put("key", basis)
    assert path.exists()
    loaded = store.get("key")
    assert loaded is not None
    assert loaded.format_version == ROM_FORMAT_VERSION
    assert np.array_equal(loaded.V, basis.V)
    assert loaded.matches(rom_model)

    from repro.obs import get_registry

    corrupt = get_registry().counter("rom.store.corrupt")
    misses = get_registry().counter("rom.store.misses")
    before_corrupt, before_misses = corrupt.value, misses.value
    # Truncated blob: counted miss, never a crash.
    path.write_bytes(path.read_bytes()[:64])
    assert store.get("key") is None
    # Foreign payload: miss as well.
    path.write_bytes(pickle.dumps({"not": "a basis"}))
    assert store.get("key") is None
    assert corrupt.value == before_corrupt + 2
    assert misses.value == before_misses + 2


def test_store_loaded_basis_rejects_mismatched_model(rom_model, tmp_path):
    basis = rom_model.ensure_rom().basis
    other = CompactThermalModel(
        build_3d_mpsoc(2, CoolingMode.LIQUID), nx=8, ny=6
    )
    assert not basis.matches(other)


def test_build_rom_basis_reproducible(exact_model):
    first = build_rom_basis(
        exact_model,
        RomOptions(
            flow_points=3,
            max_modes=24,
            validation_queries=2,
            transient_calibration_steps=4,
            transient_snapshots=3,
        ),
    )
    second = build_rom_basis(
        exact_model,
        RomOptions(
            flow_points=3,
            max_modes=24,
            validation_queries=2,
            transient_calibration_steps=4,
            transient_snapshots=3,
        ),
    )
    assert np.array_equal(first.V, second.V)
    assert first.kappa_steady == second.kappa_steady


def test_rom_options_validation():
    with pytest.raises(ValueError):
        RomOptions(max_modes=0)
    with pytest.raises(ValueError):
        RomOptions(flow_points=0)
    with pytest.raises(ValueError):
        RomOptions(safety=0.5)
    with pytest.raises(ValueError):
        RomOptions(tolerance_k=0.0)


def test_rom_spec_validation_and_hashes():
    with pytest.raises(ScenarioError):
        SolverSpec(backend="direct", rom=RomSpec())
    with pytest.raises(ScenarioError):
        RomSpec(modes=0)
    base = Scenario()
    assert "rom" not in base.to_dict()["solver"]
    rom_default = Scenario(solver=SolverSpec(backend="rom"))
    rom_tuned = Scenario(
        solver=SolverSpec(backend="rom", rom=RomSpec(modes=64))
    )
    hashes = {
        base.model_hash(),
        rom_default.model_hash(),
        rom_tuned.model_hash(),
    }
    assert len(hashes) == 3, "the ROM budget must be part of model_hash"
    assert Scenario.from_json(rom_tuned.to_json()) == rom_tuned


def _rom_scenario():
    policy = PolicySpec(name="LC_FUZZY")
    return Scenario(
        stack=StackSpec(tiers=2, cooling=policy.cooling),
        workload=WorkloadSpec(name="database", duration=2),
        policy=policy,
        solver=SolverSpec(
            backend="rom",
            nx=NX,
            ny=NY,
            rom=RomSpec(modes=128, flow_points=5, validation=4),
        ),
        control=ControlSpec(),
    )


def test_runner_persists_and_reuses_the_basis(tmp_path):
    scenario = _rom_scenario()
    cache = ResultCache(tmp_path)
    result = Runner(scenario, cache=cache).run()
    stored = list(tmp_path.glob("rom-*.pkl"))
    assert len(stored) == 1
    assert scenario.model_hash() in stored[0].name

    # Drop only the cached result: the re-run must reload the
    # serialized basis instead of rebuilding it, and reproduce the run.
    cache.path(scenario).unlink()
    hits = _counter("rom.store.hits")
    again = Runner(scenario, cache=ResultCache(tmp_path)).run()
    assert _counter("rom.store.hits") == hits + 1
    assert again.peak_temperature_c == pytest.approx(
        result.peak_temperature_c
    )
