"""Scenario spec tree: round-trips, content hashing, validation errors."""

import json
import multiprocessing
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.scenario import (
    SCHEMA_VERSION,
    ChannelSpec,
    ControlSpec,
    FaultSpec,
    FlowFaultSpec,
    PolicySpec,
    Scenario,
    ScenarioError,
    SensorFaultSpec,
    SolverSpec,
    StackSpec,
    WorkloadSpec,
)


def _scenario(**overrides) -> Scenario:
    base = dict(
        stack=StackSpec(tiers=2, cooling="liquid"),
        workload=WorkloadSpec(name="database", duration=4),
        policy=PolicySpec(name="LC_FUZZY"),
        solver=SolverSpec(nx=12, ny=10),
        control=ControlSpec(),
        label="unit",
    )
    base.update(overrides)
    return Scenario(**base)


# -- round-trips ------------------------------------------------------------


def test_dict_round_trip():
    scenario = _scenario(
        faults=FaultSpec(
            sensors=(
                SensorFaultSpec(
                    kind="stuck",
                    layer="tier0_die",
                    block="core0",
                    start=1.0,
                    value_k=300.0,
                ),
            ),
            flows=(FlowFaultSpec(kind="pump-degradation", start=0.5),),
            actuator_lag_periods=3,
        )
    )
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_json_round_trip_with_channel_and_pattern():
    scenario = _scenario(
        stack=StackSpec(
            tiers=4,
            cooling="liquid",
            tier_pattern="cmcm",
            channel=ChannelSpec(width=100e-6, height=100e-6, pitch=200e-6),
        ),
        workload=WorkloadSpec(
            source="generator", name="max-utilisation", threads=64, duration=4
        ),
    )
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_save_load_round_trip(tmp_path):
    scenario = _scenario()
    path = scenario.save(tmp_path / "spec.json")
    assert Scenario.load(path) == scenario
    assert json.loads(path.read_text())["schema_version"] == SCHEMA_VERSION


def test_to_dict_is_json_ready():
    text = json.dumps(_scenario().to_dict())
    assert '"schema_version"' in text


# -- content hashing --------------------------------------------------------


def test_hash_deterministic_and_label_independent():
    a = _scenario(label="a")
    b = _scenario(label="something else")
    assert a.content_hash() == b.content_hash()
    assert len(a.content_hash()) == 64


def test_hash_changes_with_content():
    base = _scenario()
    assert (
        base.content_hash()
        != _scenario(solver=SolverSpec(nx=13, ny=10)).content_hash()
    )
    assert (
        base.content_hash()
        != _scenario(
            workload=WorkloadSpec(name="web", duration=4)
        ).content_hash()
    )


def test_hash_survives_json_round_trip():
    scenario = _scenario()
    assert (
        Scenario.from_json(scenario.to_json()).content_hash()
        == scenario.content_hash()
    )


def test_hash_stable_across_fresh_interpreter():
    """A spawn-style subprocess computes the identical hash."""
    scenario = _scenario()
    code = (
        "import sys\n"
        "from repro.scenario import Scenario\n"
        "print(Scenario.from_json(sys.stdin.read()).content_hash())\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        input=scenario.to_json(),
        capture_output=True,
        text=True,
        check=True,
    )
    assert proc.stdout.strip() == scenario.content_hash()


def test_hash_stable_across_fork():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    context = multiprocessing.get_context("fork")
    scenario = _scenario()
    with context.Pool(1) as pool:
        (child_hash,) = pool.map(_hash_of_canonical_scenario, [None])
    assert child_hash == scenario.content_hash()


def _hash_of_canonical_scenario(_):
    return _scenario().content_hash()


def test_model_hash_ignores_non_model_fields():
    base = _scenario()
    same_model = _scenario(
        workload=WorkloadSpec(name="web", duration=9),
        policy=PolicySpec(name="LC_LB"),
        record_series=True,
    )
    assert base.model_hash() == same_model.model_hash()
    assert base.model_hash() != _scenario(
        solver=SolverSpec(nx=13, ny=10)
    ).model_hash()
    assert base.content_hash() != same_model.content_hash()


# -- malformed specs --------------------------------------------------------


def test_unknown_field_suggests_nearest():
    data = _scenario().to_dict()
    data["polcy"] = data.pop("policy")
    with pytest.raises(ScenarioError, match=r"scenario\.polcy.*did you mean 'policy'"):
        Scenario.from_dict(data)


def test_nested_unknown_field_names_path():
    data = _scenario().to_dict()
    data["solver"]["bakend"] = "direct"
    with pytest.raises(ScenarioError, match=r"scenario\.solver\.bakend"):
        Scenario.from_dict(data)


def test_bad_choice_lists_options():
    data = _scenario().to_dict()
    data["policy"]["name"] = "LC_FUZY"
    with pytest.raises(
        ScenarioError, match=r"scenario\.policy\.name.*did you mean 'LC_FUZZY'"
    ):
        Scenario.from_dict(data)


def test_wrong_type_names_expectation():
    data = _scenario().to_dict()
    data["solver"]["nx"] = "coarse"
    with pytest.raises(ScenarioError, match=r"scenario\.solver\.nx: expected int"):
        Scenario.from_dict(data)


def test_non_mapping_rejected():
    with pytest.raises(ScenarioError, match="expected an object/mapping"):
        Scenario.from_dict([1, 2, 3])


def test_future_schema_version_rejected():
    data = _scenario().to_dict()
    data["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(ScenarioError, match="schema_version"):
        Scenario.from_dict(data)


def test_invalid_json_rejected():
    with pytest.raises(ScenarioError, match="invalid JSON"):
        Scenario.from_json("{not json")


def test_scenario_error_is_value_error():
    assert issubclass(ScenarioError, ValueError)


# -- cross-field validation -------------------------------------------------


def test_policy_stack_cooling_mismatch():
    with pytest.raises(ScenarioError, match="cooling"):
        _scenario(policy=PolicySpec(name="AC_LB"))


def test_flow_faults_need_liquid_cooling():
    with pytest.raises(ScenarioError, match="liquid"):
        _scenario(
            stack=StackSpec(tiers=2, cooling="air"),
            policy=PolicySpec(name="AC_LB"),
            faults=FaultSpec(
                flows=(FlowFaultSpec(kind="pump-degradation"),)
            ),
        )


def test_too_few_threads_rejected():
    with pytest.raises(ScenarioError, match="threads"):
        _scenario(workload=WorkloadSpec(name="database", threads=4, duration=4))


def test_clogged_cavity_needs_name():
    with pytest.raises(ScenarioError, match="cavity"):
        FlowFaultSpec(kind="clogged-cavity")


def test_duplicate_sensor_fault_rejected():
    sensor = SensorFaultSpec(kind="dead", layer="tier0_die", block="core0")
    with pytest.raises(ScenarioError, match="duplicate"):
        FaultSpec(sensors=(sensor, sensor))


# -- helpers ----------------------------------------------------------------


def test_with_faults_and_with_label():
    base = _scenario()
    overlay = FaultSpec(flows=(FlowFaultSpec(kind="pump-degradation"),))
    faulted = base.with_faults(overlay)
    assert faulted.faults == overlay and base.faults is None
    relabelled = base.with_label("renamed")
    assert relabelled.label == "renamed"
    assert relabelled.content_hash() == base.content_hash()


def test_scenarios_are_frozen():
    scenario = _scenario()
    with pytest.raises(Exception):
        scenario.record_series = True
    # dataclasses.replace is the supported way to derive variants
    assert replace(scenario, record_series=True).record_series is True
