"""Runner/cache/fan-out integration: scenario runs match legacy paths."""

import pytest

from repro.analysis import (
    SimulationJob,
    run_simulations,
    run_simulations_resilient,
    run_simulations_shared,
)
from repro.analysis.sweep import (
    _build_shared_payload,
    _clear_shared_payload,
    _install_shared_payload,
    _resolve_shared_simulator,
)
from repro.core import SystemSimulator, paper_policies
from repro.faults import FaultScenario, run_fault_campaign
from repro.geometry import build_3d_mpsoc
from repro.scenario import (
    ControlSpec,
    FaultSpec,
    PolicySpec,
    ResultCache,
    Scenario,
    SensorFaultSpec,
    SolverSpec,
    StackSpec,
    WorkloadSpec,
    run_scenario,
)
from repro.workload import paper_workload_suite

NX, NY = 12, 10
DURATION = 2


def _scenario(policy="LC_FUZZY", workload="database", **overrides):
    spec = PolicySpec(name=policy)
    base = dict(
        stack=StackSpec(tiers=2, cooling=spec.cooling),
        workload=WorkloadSpec(name=workload, duration=DURATION),
        policy=spec,
        solver=SolverSpec(nx=NX, ny=NY),
        control=ControlSpec(),
        label=f"{policy}/{workload}",
    )
    base.update(overrides)
    return Scenario(**base)


def _fields(result):
    return (
        result.policy,
        result.workload,
        result.duration,
        result.peak_temperature_c,
        result.chip_energy_j,
        result.pump_energy_j,
        result.hotspot_percent_avg,
        result.hotspot_percent_any,
        result.degradation_percent,
        result.mean_flow_ml_min,
    )


# -- bitwise equality vs the legacy path ------------------------------------


@pytest.mark.parametrize(
    "policy_name", ["AC_LB", "AC_TDVFS_LB", "LC_LB", "LC_FUZZY"]
)
def test_runner_bitwise_equals_legacy(policy_name):
    """The Fig. 6 policy suite: Runner == hand-wired SystemSimulator."""
    scenario = _scenario(policy=policy_name, workload="max-utilisation")
    via_runner = run_scenario(scenario)

    policy = next(p for p in paper_policies() if p.name == policy_name)
    stack = build_3d_mpsoc(2, policy.cooling)
    trace = paper_workload_suite(threads=32, duration=DURATION)[
        "max-utilisation"
    ]
    legacy = SystemSimulator(stack, policy, trace, nx=NX, ny=NY).run()

    assert _fields(via_runner) == _fields(legacy)


def test_from_scenario_classmethod_matches_runner():
    scenario = _scenario()
    direct = SystemSimulator.from_scenario(scenario).run()
    assert _fields(direct) == _fields(run_scenario(scenario))


# -- result cache -----------------------------------------------------------


def test_cache_round_trip_and_zero_extra_solves(tmp_path, monkeypatch):
    scenario = _scenario()
    cache = ResultCache(tmp_path)

    calls = {"n": 0}
    original = SystemSimulator.run

    def counting_run(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(SystemSimulator, "run", counting_run)
    first = run_scenario(scenario, cache=cache)
    second = run_scenario(scenario, cache=cache)
    assert calls["n"] == 1, "the repeated point must be served from cache"
    assert cache.hits == 1 and _fields(first) == _fields(second)


def test_cache_miss_on_different_scenario(tmp_path):
    cache = ResultCache(tmp_path)
    run_scenario(_scenario(), cache=cache)
    run_scenario(_scenario(workload="web"), cache=cache)
    assert cache.hits == 0 and cache.misses == 2


def test_corrupt_cache_entry_degrades_to_recompute(tmp_path):
    scenario = _scenario()
    cache = ResultCache(tmp_path)
    result = run_scenario(scenario, cache=cache)
    cache.path(scenario).write_bytes(b"not a pickle")
    again = run_scenario(scenario, cache=cache)
    assert _fields(again) == _fields(result)
    assert cache.corrupt == 1


def test_truncated_cache_entry_is_a_counted_miss(tmp_path):
    scenario = _scenario()
    cache = ResultCache(tmp_path)
    result = run_scenario(scenario, cache=cache)
    path = cache.path(scenario)
    # A torn write from a pre-atomic-rename era (or bit rot): a valid
    # pickle prefix that ends mid-stream.
    path.write_bytes(path.read_bytes()[:100])
    again = run_scenario(scenario, cache=cache)
    assert _fields(again) == _fields(result)
    assert cache.corrupt == 1

    # A well-formed pickle of the wrong type is equally untrusted.
    import pickle

    path.write_bytes(pickle.dumps(["not", "a", "result"]))
    third = run_scenario(scenario, cache=cache)
    assert _fields(third) == _fields(result)
    assert cache.corrupt == 2


def test_run_simulations_cache_dir_skips_solves(tmp_path, monkeypatch):
    jobs = [_scenario(), _scenario(workload="web")]

    calls = {"n": 0}
    original = SystemSimulator.run

    def counting_run(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(SystemSimulator, "run", counting_run)
    first = run_simulations(jobs, cache_dir=tmp_path)
    second = run_simulations(jobs, cache_dir=tmp_path)
    assert calls["n"] == len(jobs)
    assert [(k, _fields(r)) for k, r in first] == [
        (k, _fields(r)) for k, r in second
    ]


# -- fan-out over scenarios -------------------------------------------------


def test_run_simulations_accepts_bare_scenarios():
    scenarios = [_scenario(policy="LC_LB"), _scenario(policy="LC_FUZZY")]
    results = run_simulations(scenarios)
    assert [key for key, _ in results] == [s.label for s in scenarios]
    for scenario, (_, result) in zip(scenarios, results):
        assert _fields(result) == _fields(run_scenario(scenario))


def test_scenario_job_rejects_mixed_construction():
    scenario = _scenario()
    stack = build_3d_mpsoc(2)
    with pytest.raises(ValueError, match="scenario-backed"):
        SimulationJob(stack=stack, scenario=scenario)
    with pytest.raises(ValueError, match="either a Scenario"):
        SimulationJob(stack=stack)


def test_shared_serial_matches_plain_for_scenarios():
    scenarios = [_scenario(workload="web"), _scenario(workload="database")]
    plain = run_simulations(scenarios)
    shared = run_simulations_shared(scenarios)
    assert [(k, _fields(r)) for k, r in plain] == [
        (k, _fields(r)) for k, r in shared
    ]


def test_shared_payload_dedupes_scenarios_and_models():
    a = _scenario(workload="web")
    b = _scenario(workload="database")
    jobs = [SimulationJob.from_scenario(s) for s in (a, a, b)]
    payload, refs = _build_shared_payload(jobs)
    assert len(payload.scenarios) == 2
    assert not payload.stacks and not payload.kwargs
    assert refs[0].scenario == refs[1].scenario == 0
    # same stack + solver spec -> one shared thermal model for all jobs
    assert len({ref.model_key for ref in refs}) == 1
    assert refs[0].model_key == a.model_hash()


def test_shared_model_reused_across_scenario_jobs():
    jobs = [
        SimulationJob.from_scenario(_scenario(workload="web")),
        SimulationJob.from_scenario(_scenario(workload="database")),
    ]
    payload, refs = _build_shared_payload(jobs)
    _install_shared_payload(payload)
    try:
        first = _resolve_shared_simulator(refs[0])
        second = _resolve_shared_simulator(refs[1])
        assert second.model is first.model
    finally:
        _clear_shared_payload()


def test_resilient_accepts_scenarios():
    outcome = run_simulations_resilient([_scenario(policy="LC_LB")])
    assert outcome.complete and len(outcome.results) == 1


# -- fault campaigns over a scenario base -----------------------------------


def _dead_sensor():
    return FaultSpec(
        sensors=(
            SensorFaultSpec(
                kind="dead", layer="tier0_die", block="core0", start=0.0
            ),
        )
    )


def test_campaign_with_scenario_base(tmp_path):
    base = _scenario()
    report = run_fault_campaign(
        base,
        scenarios=[FaultScenario("dead-sensor", _dead_sensor())],
        cache_dir=tmp_path,
    )
    assert report.complete
    assert report.policy == "LC_FUZZY" and report.workload == "database"
    outcome = report.outcomes[0]
    assert outcome.completed and outcome.peak_delta_c is not None


def test_campaign_scenario_base_rejects_extra_objects():
    base = _scenario()
    policy = next(p for p in paper_policies() if p.name == "LC_FUZZY")
    with pytest.raises(ValueError, match="Scenario base"):
        run_fault_campaign(base, policy=policy, scenarios=[])


def test_campaign_baseline_served_from_cache(tmp_path, monkeypatch):
    base = _scenario()
    scenarios = [FaultScenario("dead-sensor", _dead_sensor())]

    calls = {"n": 0}
    original = SystemSimulator.run

    def counting_run(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(SystemSimulator, "run", counting_run)
    run_fault_campaign(base, scenarios=scenarios, cache_dir=tmp_path)
    solves_first = calls["n"]
    run_fault_campaign(base, scenarios=scenarios, cache_dir=tmp_path)
    assert calls["n"] == solves_first, (
        "a repeated campaign must be served entirely from the cache"
    )
