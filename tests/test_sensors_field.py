"""Temperature fields and on-die sensors."""

import numpy as np
import pytest

from repro.thermal import CompactThermalModel, TemperatureField, TemperatureSensors


def core_powers(stack, watts=5.0):
    return {
        (layer.name, block.name): watts
        for layer, block in stack.iter_blocks()
        if block.kind == "core"
    }


def test_field_shape_validation(liquid_model_coarse):
    grid = liquid_model_coarse.grid
    with pytest.raises(ValueError):
        TemperatureField(grid, np.zeros(grid.size + 1))


def test_layer_extraction_returns_copy(liquid_model_coarse):
    field = liquid_model_coarse.uniform_field(300.0)
    layer = field.layer("tier0_die")
    layer[0, 0] = 999.0
    assert field.values.max() == 300.0


def test_block_temperatures_max_vs_mean(liquid_model_coarse, liquid_stack_2tier):
    field = liquid_model_coarse.steady_state(core_powers(liquid_stack_2tier))
    masks = liquid_model_coarse.block_masks()
    maxima = field.block_temperatures(masks, reduce="max")
    means = field.block_temperatures(masks, reduce="mean")
    for ref in masks:
        assert maxima[ref] >= means[ref]


def test_block_temperatures_rejects_bad_reduce(liquid_model_coarse):
    field = liquid_model_coarse.uniform_field(300.0)
    with pytest.raises(ValueError):
        field.block_temperatures(liquid_model_coarse.block_masks(), reduce="median")


def test_sensors_default_to_cores(liquid_model_coarse):
    sensors = TemperatureSensors(liquid_model_coarse)
    assert len(sensors.refs) == 8
    assert all(name.startswith("core") for _, name in sensors.refs)


def test_sensor_readings_track_hot_cores(liquid_model_coarse, liquid_stack_2tier):
    powers = core_powers(liquid_stack_2tier, 2.0)
    hot_ref = ("tier0_die", "core0")
    powers[hot_ref] = 8.0
    field = liquid_model_coarse.steady_state(powers)
    sensors = TemperatureSensors(liquid_model_coarse)
    ref, value = sensors.read_max(field)
    assert ref == hot_ref
    assert value == pytest.approx(max(sensors.read(field).values()))


def test_noise_is_reproducible_per_seed(liquid_model_coarse):
    field = liquid_model_coarse.uniform_field(300.0)
    s1 = TemperatureSensors(liquid_model_coarse, noise_sigma=0.5, seed=7)
    s2 = TemperatureSensors(liquid_model_coarse, noise_sigma=0.5, seed=7)
    assert s1.read(field) == s2.read(field)


def test_noiseless_sensors_are_exact(liquid_model_coarse):
    field = liquid_model_coarse.uniform_field(321.0)
    sensors = TemperatureSensors(liquid_model_coarse)
    readings = sensors.read(field)
    assert all(v == pytest.approx(321.0) for v in readings.values())


def test_quantisation_rounds_to_lsb(liquid_model_coarse):
    field = liquid_model_coarse.uniform_field(300.27)
    sensors = TemperatureSensors(liquid_model_coarse, quantisation=0.5)
    readings = sensors.read(field)
    assert all(v == pytest.approx(300.5) for v in readings.values())


def test_copy_is_independent(liquid_model_coarse):
    field = liquid_model_coarse.uniform_field(300.0)
    clone = field.copy()
    clone.values[:] = 400.0
    assert field.values.max() == 300.0


def test_invalid_sensor_parameters(liquid_model_coarse):
    with pytest.raises(ValueError):
        TemperatureSensors(liquid_model_coarse, noise_sigma=-1.0)
    with pytest.raises(ValueError):
        TemperatureSensors(liquid_model_coarse, refs=[])
