"""Scenario-job service units: WAL, job store, breaker, protocol, loop.

The subprocess-based crash tests live in ``tests/test_service_chaos.py``;
everything here runs in-process for speed.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.obs import get_registry
from repro.scenario import ResultCache, Runner
from repro.service import (
    CircuitBreaker,
    JobState,
    JobStore,
    ProtocolError,
    RetryPolicy,
    ScenarioJobService,
    ServiceClient,
    WriteAheadLog,
)
from repro.service.protocol import parse_address
from repro.service.supervisor import scenario_class
from tests.chaos import make_scenario


# ---------------------------------------------------------------------------
# write-ahead log
# ---------------------------------------------------------------------------


def test_wal_append_replay_roundtrip(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal", fsync=False)
    records = [{"type": "submit", "job_id": f"job-{i:06d}"} for i in range(5)]
    for record in records:
        wal.append(record)
    wal.close()

    report = WriteAheadLog(tmp_path / "wal", fsync=False).replay()
    assert [r["job_id"] for r in report.records] == [
        r["job_id"] for r in records
    ]
    assert all(r["wal_schema"] == 1 for r in report.records)
    assert report.corrupt_tail_segments == []
    assert report.dropped_bytes == 0


def test_wal_corrupt_tail_is_truncated_and_counted(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal", fsync=False)
    wal.append({"type": "submit", "job_id": "job-000001"})
    wal.append({"type": "transition", "job_id": "job-000001"})
    wal.close()
    (segment,) = wal.segments()
    clean_size = segment.stat().st_size
    with open(segment, "ab") as handle:
        handle.write(b'{"type": "transi')  # torn write, no newline

    counter = get_registry().counter("service.wal.corrupt_tail")
    before = counter.value
    report = WriteAheadLog(tmp_path / "wal", fsync=False).replay()

    # Both committed records survive; only the torn tail is lost.
    assert [r["type"] for r in report.records] == ["submit", "transition"]
    assert [p.name for p in report.corrupt_tail_segments] == [segment.name]
    assert report.dropped_bytes == 16
    assert counter.value == before + 1
    # The repair is physical: the tail is gone from disk too.
    assert segment.stat().st_size == clean_size


def test_wal_garbage_mid_segment_drops_the_suffix(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal", fsync=False)
    wal.append({"seq": 1})
    wal.close()
    (segment,) = wal.segments()
    with open(segment, "ab") as handle:
        handle.write(b"not json\n")
        handle.write(json.dumps({"seq": 2}).encode() + b"\n")

    report = WriteAheadLog(tmp_path / "wal", fsync=False).replay()
    # Replay is a prefix of history: nothing after the bad line is
    # trusted, even if it happens to decode.
    assert [r["seq"] for r in report.records] == [1]
    assert len(report.corrupt_tail_segments) == 1


def test_wal_rotation_compacts_to_live_records(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal", fsync=False, rotate_after=4)
    for i in range(4):
        wal.append({"seq": i})
    assert wal.maybe_rotate(lambda: [{"seq": "live"}]) is not None
    segments = wal.segments()
    assert [s.name for s in segments] == ["wal-000002.jsonl"]
    report = WriteAheadLog(tmp_path / "wal", fsync=False).replay()
    assert [r["seq"] for r in report.records] == ["live"]


# ---------------------------------------------------------------------------
# job store: dedupe, transitions, recovery
# ---------------------------------------------------------------------------


class _StubCache:
    """Result cache stand-in: remembers hashes, no real results."""

    def __init__(self):
        self.results = {}

    def get(self, scenario):
        return self.results.get(scenario.content_hash())

    def manifest_path(self, scenario):  # pragma: no cover - protocol shim
        raise NotImplementedError


def test_submit_disposition_new_then_attached(tmp_path):
    store = JobStore(tmp_path, cache=_StubCache(), fsync=False)
    job, disposition = store.submit(make_scenario("a"))
    assert disposition == "new"
    assert job.state is JobState.PENDING

    # Labels differ but the physics is identical -> same content hash.
    twin, disposition = store.submit(make_scenario("b"))
    assert disposition == "attached"
    assert twin.job_id == job.job_id
    assert twin.attached == 1
    store.close()


def test_submit_disposition_cached_needs_a_cache_hit(tmp_path):
    cache = _StubCache()
    store = JobStore(tmp_path, cache=cache, fsync=False)
    job, _ = store.submit(make_scenario("a"))
    store.transition(job.job_id, JobState.RUNNING, attempts=1)
    store.transition(job.job_id, JobState.DONE)

    # DONE twin but the cache entry is gone: a fresh job, not "cached".
    rerun, disposition = store.submit(make_scenario("b"))
    assert disposition == "new"
    assert rerun.job_id != job.job_id
    store.transition(rerun.job_id, JobState.CANCELLED)

    cache.results[job.content_hash] = object()
    _, disposition = store.submit(make_scenario("c"))
    assert disposition == "cached"
    store.close()


def test_terminal_states_are_never_left(tmp_path):
    store = JobStore(tmp_path, cache=_StubCache(), fsync=False)
    job, _ = store.submit(make_scenario())
    store.transition(job.job_id, JobState.CANCELLED)
    with pytest.raises(ValueError):
        store.transition(job.job_id, JobState.RUNNING)
    store.close()


def test_recovery_replays_and_requeues_running_jobs(tmp_path):
    store = JobStore(tmp_path, cache=_StubCache(), fsync=False)
    running, _ = store.submit(make_scenario("running", "database"))
    store.transition(running.job_id, JobState.RUNNING, attempts=1)
    done, _ = store.submit(make_scenario("done", "web"))
    store.transition(done.job_id, JobState.RUNNING, attempts=1)
    store.transition(done.job_id, JobState.DONE)
    # No close(): simulate the process dying with the WAL handle open.

    reopened = JobStore(tmp_path, cache=_StubCache(), fsync=False)
    assert reopened.recovery.jobs == 2
    assert reopened.recovery.requeued == 1
    assert reopened.jobs[running.job_id].state is JobState.PENDING
    assert reopened.jobs[running.job_id].attempts == 1
    assert reopened.jobs[done.job_id].state is JobState.DONE
    # Dedupe maps are rebuilt: the requeued twin attaches, not re-runs.
    _, disposition = reopened.submit(make_scenario("twin", "database"))
    assert disposition == "attached"
    # Fresh ids keep counting from the recovered sequence.
    fresh, _ = reopened.submit(make_scenario("fresh", "multimedia"))
    assert fresh.job_id == "job-000003"
    reopened.close()


def test_recovery_survives_a_torn_wal_tail(tmp_path):
    store = JobStore(tmp_path, cache=_StubCache(), fsync=False)
    job, _ = store.submit(make_scenario())
    store.transition(job.job_id, JobState.RUNNING, attempts=1)
    (segment,) = store.wal.segments()
    with open(segment, "ab") as handle:
        handle.write(b'{"type": "transition", "state": "DO')

    reopened = JobStore(tmp_path, cache=_StubCache(), fsync=False)
    # The torn DONE never committed, so the job is (correctly) requeued.
    assert reopened.recovery.corrupt_tail_segments == 1
    assert reopened.recovery.dropped_bytes > 0
    assert reopened.jobs[job.job_id].state is JobState.PENDING
    reopened.close()


# ---------------------------------------------------------------------------
# retry policy and circuit breaker
# ---------------------------------------------------------------------------


def test_retry_delay_grows_and_respects_cap():
    policy = RetryPolicy(retries=3, backoff_s=1.0, cap_s=4.0, jitter=0.0)
    assert policy.max_attempts == 4
    assert [policy.delay(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 4.0]


def test_retry_delay_jitter_spreads_but_stays_bounded():
    policy = RetryPolicy(retries=2, backoff_s=1.0, cap_s=30.0, jitter=0.5)
    rng = random.Random(42)
    delays = {policy.delay(2, rng) for _ in range(50)}
    assert len(delays) > 1  # actually jittered
    assert all(1.0 <= d <= 3.0 for d in delays)  # base 2.0 +/- 50 %


def test_breaker_opens_cools_down_and_probes():
    breaker = CircuitBreaker(death_threshold=2, cooldown_s=10.0)
    assert breaker.allow("k", now=0.0)
    breaker.record_death("k", now=0.0)
    assert breaker.state("k") == "closed"  # one death is tolerated
    breaker.record_death("k", now=1.0)
    assert breaker.state("k") == "open"
    assert not breaker.allow("k", now=5.0)

    # Cooldown elapses: exactly one half-open probe is admitted.
    assert breaker.allow("k", now=12.0)
    assert breaker.state("k") == "half-open"
    assert not breaker.allow("k", now=12.0)

    # A dying probe reopens immediately (no second grace period).
    breaker.record_death("k", now=12.5)
    assert breaker.state("k") == "open"
    assert not breaker.allow("k", now=13.0)

    # A succeeding probe closes the circuit for good.
    assert breaker.allow("k", now=23.0)
    breaker.record_success("k")
    assert breaker.state("k") == "closed"
    assert breaker.allow("k", now=23.1)
    assert breaker.snapshot() == {}


def test_scenario_class_groups_by_family():
    a = make_scenario("a", "database")
    b = make_scenario("b", "web")
    assert scenario_class(a) == scenario_class(b) == "LC_FUZZY/auto/2t-liquid"


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


def test_parse_address_tcp_vs_path(tmp_path):
    assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert parse_address(":9000") == ("127.0.0.1", 9000)
    sock = tmp_path / "x:y" / "service.sock"
    assert parse_address(str(sock)) == sock
    assert parse_address("service.sock").name == "service.sock"


# ---------------------------------------------------------------------------
# full service loop (in-process, background thread)
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    svc = ScenarioJobService(
        tmp_path / "svc",
        max_workers=1,
        retry=RetryPolicy(retries=1, backoff_s=0.01),
        fsync=False,
        poll_interval_s=0.02,
        drain_timeout_s=10.0,
    )
    svc.start_background()
    yield svc
    svc.stop_background()


def test_service_submit_runs_to_done_with_result(service):
    client = ServiceClient(service.address)
    accepted = client.submit(make_scenario("svc-e2e").to_dict())
    assert accepted["disposition"] == "new"
    job = client.wait_for(accepted["job_id"], timeout=120.0)
    assert job["state"] == "DONE"
    assert job["attempts"] == 1

    payload = client.result(accepted["job_id"])
    assert payload["result"]["policy"] == "LC_FUZZY"
    assert payload["result"]["peak_temperature_c"] > 20.0
    assert payload["manifest"]["cached"] is False

    # Identical physics resubmitted: answered from the cache, no solve.
    again = client.submit(make_scenario("svc-e2e-again").to_dict())
    assert again["disposition"] == "cached"
    assert again["job_id"] == accepted["job_id"]

    health = client.health()
    assert health["status"] == "ok"
    assert health["counts"]["DONE"] == 1


def test_service_cancel_pending_job(service, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_TEST_DELAY_S", "5.0")
    client = ServiceClient(service.address)
    first = client.submit(make_scenario("c1", "database").to_dict())
    second = client.submit(make_scenario("c2", "web").to_dict())
    # One worker, the first job holds it for seconds: cancel the queued
    # one, then the running one.
    cancelled = client.cancel(second["job_id"])["job"]
    assert cancelled["state"] == "CANCELLED"
    cancelled = client.cancel(first["job_id"])["job"]
    assert cancelled["state"] == "CANCELLED"
    with pytest.raises(ProtocolError, match="already CANCELLED"):
        client.cancel(first["job_id"])


def test_service_rejects_malformed_requests(service):
    client = ServiceClient(service.address)
    with pytest.raises(ProtocolError, match="unknown op"):
        client.request({"op": "frobnicate"})
    with pytest.raises(ProtocolError, match="no such job"):
        client.status("job-999999")
    with pytest.raises(ProtocolError, match="workload"):
        client.request({"op": "submit", "scenario": {"workload": "nope"}})


def test_worker_result_lands_in_shared_cache(service):
    client = ServiceClient(service.address)
    scenario = make_scenario("cache-visible")
    accepted = client.submit(scenario.to_dict())
    client.wait_for(accepted["job_id"], timeout=120.0)

    # The worker wrote through the service's ResultCache: the same
    # scenario solved locally is now a pure cache hit.
    cache = ResultCache(service.root / "cache")
    result = cache.get(scenario)
    assert result is not None
    assert result.peak_temperature_c > 20.0
    runner = Runner(scenario, cache=cache)
    runner.run()
    assert runner.last_manifest["cached"] is True


def test_service_gauges_track_queue_wal_and_workers(service, monkeypatch):
    """The live gauges follow the supervisor's state every tick."""
    import time as _time

    monkeypatch.setenv("REPRO_SERVICE_TEST_DELAY_S", "0.4")
    client = ServiceClient(service.address)
    first = client.submit(make_scenario("g1", "database").to_dict())
    client.submit(make_scenario("g2", "web").to_dict())

    registry = get_registry()
    saw_depth = saw_worker = False
    deadline = _time.monotonic() + 30.0
    while _time.monotonic() < deadline and not (saw_depth and saw_worker):
        saw_depth |= registry.gauge("service.queue.depth").value >= 1.0
        saw_worker |= registry.gauge("service.workers.alive").value >= 1.0
        _time.sleep(0.02)
    assert saw_depth, "queue-depth gauge never saw the queued job"
    assert saw_worker, "workers-alive gauge never saw the busy worker"
    # The WAL gauge tracks journal growth from the submit records on.
    assert registry.gauge("service.wal.bytes").value > 0
    client.wait_for(first["job_id"], timeout=120.0)


def test_wal_records_are_pickle_free_json(tmp_path):
    """The journal must stay greppable plain text (ops requirement)."""
    store = JobStore(tmp_path, cache=_StubCache(), fsync=False)
    job, _ = store.submit(make_scenario())
    store.transition(job.job_id, JobState.RUNNING, attempts=1)
    store.close()
    for segment in store.wal.segments():
        for line in segment.read_bytes().splitlines():
            record = json.loads(line)  # raises if not JSON
            with pytest.raises(Exception):
                pickle.loads(line)
            assert record["wal_schema"] == 1
