"""Chaos suite: the service's durability claims under real crashes.

Acceptance criteria from the service design (DESIGN.md §13):

* after ``kill -9`` of a worker mid-solve **and** a full service
  restart, all jobs reach ``DONE`` exactly once;
* resubmitting an identical spec performs **zero** additional solves;
* truncating the WAL tail loses at most the single uncommitted record;
* SIGTERM drains gracefully and exits 0.

Every test here runs ``python -m repro serve`` as a real subprocess
(via :class:`tests.chaos.ServiceHarness`) so the kills are real kills.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.service import JobState, JobStore
from tests.chaos import (
    ServiceHarness,
    count_solves,
    garble_wal_tail,
    make_scenario,
    read_run_log,
)


@pytest.fixture()
def harness(tmp_path):
    h = ServiceHarness(tmp_path / "svc")
    yield h
    h.stop()


# ---------------------------------------------------------------------------
# worker kill + full restart: DONE exactly once
# ---------------------------------------------------------------------------


def test_kill9_worker_then_kill9_service_every_job_done_exactly_once(
    tmp_path,
):
    root = tmp_path / "svc"
    harness = ServiceHarness(root, solve_delay_s=1.0, retries=3)
    try:
        harness.start()
        first = harness.submit(make_scenario("victim", "database"))
        second = harness.submit(make_scenario("bystander", "web"))

        # Chaos 1: SIGKILL the worker mid-solve.  The supervisor must
        # notice the death and re-enqueue the attempt.
        killed_pid = harness.kill_worker(first["job_id"])

        # Chaos 2: SIGKILL the whole service while the retry attempt
        # is in flight (wait for a *fresh* worker, not the corpse).
        deadline = time.monotonic() + 60.0
        while True:
            job = harness.wait_running(first["job_id"])
            if job["worker_pid"] != killed_pid:
                break
            assert time.monotonic() < deadline
            time.sleep(0.02)
        harness.kill9()
        # SIGKILL orphans the worker; reap it so "exactly once" is
        # decided by the restarted service, not a surviving child.
        try:
            os.kill(int(job["worker_pid"]), signal.SIGKILL)
        except ProcessLookupError:
            pass
    finally:
        harness.stop()

    # Full restart on the same root, with the chaos window disabled so
    # recovery itself runs clean.
    restarted = ServiceHarness(root, retries=3)
    try:
        restarted.start()
        health = restarted.client.health()
        # No job lost: both submissions survived both kills.
        assert health["recovery"]["jobs"] == 2
        assert health["recovery"]["requeued"] >= 1

        for accepted in (first, second):
            restarted.wait_done(accepted["job_id"])

        # Exactly once: one uncached solve per content hash, total two,
        # no matter how many attempts the kills burned.
        assert count_solves(root, first["content_hash"]) == 1
        assert count_solves(root, second["content_hash"]) == 1
        assert count_solves(root) == 2

        # The SIGKILLed worker never flushed its telemetry, but the
        # supervisor synthesized its terminal trace event — with the
        # last heartbeat timestamp it was provably alive at — and the
        # line-buffered event log survived the service kill too.
        import json

        events = root / "events.jsonl"
        assert events.exists()
        killed = [
            record
            for line in events.read_text().splitlines()
            for record in (json.loads(line),)
            if record.get("name") == "worker.killed"
        ]
        assert killed, "no worker.killed event in events.jsonl"
        attrs = killed[0]["attrs"]
        assert attrs["job_id"] == first["job_id"]
        assert "exitcode" in attrs["reason"]
        assert attrs["last_heartbeat"] > 0
        assert attrs["pid"] == killed_pid
    finally:
        restarted.stop()


# ---------------------------------------------------------------------------
# resubmission: zero additional solves
# ---------------------------------------------------------------------------


def test_resubmit_identical_spec_costs_zero_solves(harness):
    harness.start()
    accepted = harness.submit(make_scenario("original"))
    harness.wait_done(accepted["job_id"])
    assert count_solves(harness.root) == 1

    # Same physics, different label: the content hash matches, the
    # result is served from the cache, and the run log does not move.
    again = harness.submit(make_scenario("relabelled"))
    assert again["disposition"] == "cached"
    assert again["job_id"] == accepted["job_id"]
    result = harness.client.result(accepted["job_id"])
    assert result["result"]["peak_temperature_c"] > 20.0
    assert count_solves(harness.root) == 1

    # Even across a restart: the cache and job table are durable.
    assert harness.sigterm() == 0
    harness.start()
    cached = harness.submit(make_scenario("after-restart"))
    assert cached["disposition"] == "cached"
    assert count_solves(harness.root) == 1


# ---------------------------------------------------------------------------
# WAL tail truncation: lose at most the uncommitted record
# ---------------------------------------------------------------------------


def test_torn_wal_tail_loses_at_most_the_last_record(harness):
    harness.start()
    done = harness.submit(make_scenario("committed", "database"))
    harness.wait_done(done["job_id"])
    pending = harness.submit(make_scenario("queued", "web"))
    harness.kill9()

    # A crash mid-append leaves a torn, newline-less record at the tail.
    segment = garble_wal_tail(harness.root)

    harness.start()
    health = harness.client.health()
    assert health["recovery"]["corrupt_tail_segments"] == 1
    assert health["recovery"]["dropped_bytes"] > 0
    # Every *committed* record survived: both jobs are still known and
    # the finished one is still DONE (its solve is not repeated).
    status = harness.client.status(done["job_id"])["job"]
    assert status["state"] == "DONE"
    harness.wait_done(pending["job_id"])
    assert count_solves(harness.root, done["content_hash"]) == 1
    # The repair was physical: the segment on disk ends clean again.
    assert not segment.read_bytes().rstrip().endswith(b"subm")


def test_truncation_only_loses_the_uncommitted_suffix(tmp_path):
    """Offline twin of the tail test: byte-level, no service process."""
    root = tmp_path / "svc"
    store = JobStore(root, fsync=False)
    first, _ = store.submit(make_scenario("first", "database"))
    second, _ = store.submit(make_scenario("second", "web"))
    store.close()

    # Cut the newest segment mid-way through the second record.
    (segment,) = store.wal.segments()
    blob = segment.read_bytes()
    first_end = blob.index(b"\n") + 1
    with open(segment, "r+b") as handle:
        handle.truncate(first_end + (len(blob) - first_end) // 2)

    reopened = JobStore(root, fsync=False)
    # The committed first record is intact; only the torn second
    # submission (the "uncommitted record") is gone.
    assert reopened.recovery.corrupt_tail_segments == 1
    assert first.job_id in reopened.jobs
    assert second.job_id not in reopened.jobs
    assert reopened.jobs[first.job_id].state is JobState.PENDING
    reopened.close()


# ---------------------------------------------------------------------------
# SIGTERM: graceful drain, exit 0, resumable
# ---------------------------------------------------------------------------


def test_sigterm_mid_solve_drains_checkpoints_and_exits_zero(tmp_path):
    root = tmp_path / "svc"
    harness = ServiceHarness(
        root, solve_delay_s=3.0, drain_timeout_s=0.5
    )
    try:
        harness.start()
        accepted = harness.submit(make_scenario("interrupted"))
        harness.wait_running(accepted["job_id"])

        # SIGTERM with a drain window far shorter than the solve: the
        # service must requeue the job through the WAL and exit 0.
        assert harness.sigterm() == 0
        assert count_solves(root) == 0
    finally:
        harness.stop()

    resumed = ServiceHarness(root)
    try:
        resumed.start()
        job = resumed.client.status(accepted["job_id"])["job"]
        assert job["state"] in ("PENDING", "RUNNING", "DONE")
        resumed.wait_done(accepted["job_id"])
        assert count_solves(root, accepted["content_hash"]) == 1
        assert resumed.sigterm() == 0
    finally:
        resumed.stop()


def test_sigterm_waits_for_short_inflight_work(harness):
    """With a generous drain window the in-flight job finishes first."""
    harness.start()
    accepted = harness.submit(make_scenario("finish-me"))
    deadline = time.monotonic() + 30.0
    while True:  # make sure the job left the queue before the SIGTERM
        state = harness.client.status(accepted["job_id"])["job"]["state"]
        if state in ("RUNNING", "DONE"):
            break
        assert time.monotonic() < deadline
        time.sleep(0.02)
    assert harness.sigterm(timeout=90.0) == 0
    # The drain completed the solve before exiting: a restart serves
    # the result from the cache with zero extra work.
    entries = [e for e in read_run_log(harness.root) if not e["cached"]]
    assert len(entries) == 1
    harness.start()
    resubmitted = harness.submit(make_scenario("finish-me-again"))
    assert resubmitted["disposition"] == "cached"
    assert count_solves(harness.root) == 1
