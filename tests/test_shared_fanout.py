"""Zero-copy fan-out: shared payload runs match plain run_simulations."""

import multiprocessing
import pickle

import pytest

from repro.analysis import (
    SimulationJob,
    run_simulations,
    run_simulations_shared,
)
from repro.analysis.sweep import (
    _build_shared_payload,
    _clear_shared_payload,
    _install_shared_payload,
    _resolve_shared_simulator,
)
from repro.core import paper_policies
from repro.geometry import build_3d_mpsoc
from repro.workload import paper_workload_suite


def _jobs():
    policies = {p.name: p for p in paper_policies()}
    policy = policies["LC_LB"]
    suite = paper_workload_suite(threads=32, duration=2)
    stack = build_3d_mpsoc(2, policy.cooling)
    return [
        SimulationJob(
            stack=stack,
            policy=policy,
            trace=suite[workload],
            key=workload,
            kwargs={"nx": 12, "ny": 10},
        )
        for workload in ("web", "database")
    ]


def _flat(results):
    """Every float of every result, for exact-equality comparison."""
    return [
        (
            key,
            r.workload,
            r.duration,
            r.peak_temperature_c,
            r.chip_energy_j,
            r.pump_energy_j,
            r.hotspot_percent_avg,
            r.hotspot_percent_any,
            r.degradation_percent,
            r.mean_flow_ml_min,
        )
        for key, r in results
    ]


def test_shared_serial_matches_plain():
    jobs = _jobs()
    assert _flat(run_simulations_shared(jobs)) == _flat(
        run_simulations(jobs)
    )


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_shared_pool_matches_plain(start_method):
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {start_method!r} unavailable here")
    jobs = _jobs()
    expected = _flat(run_simulations(jobs))
    got = _flat(
        run_simulations_shared(
            jobs, processes=2, start_method=start_method
        )
    )
    assert got == expected


def test_payload_dedupes_and_refs_stay_tiny():
    jobs = _jobs()
    payload, refs = _build_shared_payload(jobs)
    # Both jobs share one stack, one policy and one kwargs dict; only
    # the traces differ.
    assert len(payload.stacks) == 1
    assert len(payload.policies) == 1
    assert len(payload.traces) == 2
    assert len(payload.kwargs) == 1
    assert len(refs) == len(jobs)
    # The per-job pickle shrinks from the whole design space to four
    # indices — that is the fan-out serialisation saving.
    job_bytes = len(pickle.dumps(jobs[0]))
    ref_bytes = len(pickle.dumps(refs[0]))
    assert ref_bytes * 10 < job_bytes


def test_worker_reuses_cached_model_across_jobs():
    jobs = _jobs()
    payload, refs = _build_shared_payload(jobs)
    _install_shared_payload(payload)
    try:
        first = _resolve_shared_simulator(refs[0])
        second = _resolve_shared_simulator(refs[1])
        # Same stack and grid: the assembled thermal model is shared.
        assert second.model is first.model
    finally:
        _clear_shared_payload()


def test_resolve_outside_pool_is_an_error():
    _clear_shared_payload()
    payload, refs = _build_shared_payload(_jobs())
    with pytest.raises(RuntimeError):
        _resolve_shared_simulator(refs[0])
