"""Closed-loop system simulator (integration tests)."""

import numpy as np
import pytest

from repro.core import (
    SystemSimulator,
    AirLoadBalancing,
    LiquidFuzzy,
    LiquidLoadBalancing,
)
from repro.geometry import build_3d_mpsoc, CoolingMode
from tests.conftest import make_constant_trace


def make_sim(policy, trace, tiers=2, **kwargs):
    stack = build_3d_mpsoc(tiers, policy.cooling)
    kwargs.setdefault("nx", 12)
    kwargs.setdefault("ny", 10)
    return SystemSimulator(stack, policy, trace, **kwargs)


def test_mode_mismatch_rejected(short_trace):
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    with pytest.raises(ValueError, match="cooling"):
        SystemSimulator(stack, AirLoadBalancing(), short_trace)


def test_duration_matches_trace(short_trace):
    result = make_sim(LiquidLoadBalancing(), short_trace).run()
    assert result.duration == pytest.approx(short_trace.duration)


def test_lc_lb_constant_max_flow(short_trace):
    result = make_sim(LiquidLoadBalancing(), short_trace).run()
    assert result.mean_flow_ml_min == pytest.approx(32.3)
    assert result.pump_energy_j == pytest.approx(11.176 * 5.0, rel=1e-6)


def test_fuzzy_uses_less_pump_energy_than_max_flow(short_trace):
    lb = make_sim(LiquidLoadBalancing(), short_trace).run()
    fuzzy = make_sim(LiquidFuzzy(), short_trace).run()
    assert fuzzy.pump_energy_j < lb.pump_energy_j


def test_no_hotspots_on_idle_liquid_trace():
    trace = make_constant_trace(0.1)
    result = make_sim(LiquidLoadBalancing(), trace).run()
    assert result.hotspot_percent_any == 0.0
    assert result.peak_temperature_c < 60.0


def test_energy_scales_with_duration():
    short = make_constant_trace(0.6, intervals=3)
    longer = make_constant_trace(0.6, intervals=6)
    e_short = make_sim(LiquidLoadBalancing(), short).run()
    e_long = make_sim(LiquidLoadBalancing(), longer).run()
    assert e_long.chip_energy_j > 1.8 * e_short.chip_energy_j


def test_series_recording(short_trace):
    result = make_sim(
        LiquidFuzzy(), short_trace, record_series=True
    ).run()
    n_steps = int(short_trace.duration / 0.1)
    for key in ("time", "max_temperature_c", "flow_ml_min", "chip_power_w"):
        assert len(result.series[key]) == n_steps
    assert np.all(np.diff(result.series["time"]) > 0.0)


def test_no_series_by_default(short_trace):
    result = make_sim(LiquidLoadBalancing(), short_trace).run()
    assert result.series == {}


def test_higher_load_higher_chip_energy():
    low = make_sim(LiquidLoadBalancing(), make_constant_trace(0.2)).run()
    high = make_sim(LiquidLoadBalancing(), make_constant_trace(0.9)).run()
    assert high.chip_energy_j > low.chip_energy_j
    assert high.peak_temperature_c > low.peak_temperature_c


def test_air_policy_has_no_pump_energy(short_trace):
    result = make_sim(AirLoadBalancing(), short_trace).run()
    assert result.pump_energy_j == 0.0
    assert result.mean_flow_ml_min == 0.0


def test_degradation_zero_without_throttling(short_trace):
    result = make_sim(LiquidLoadBalancing(), short_trace).run()
    assert result.degradation_percent == 0.0


def test_insufficient_threads_rejected():
    trace = make_constant_trace(0.5, threads=4)
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    with pytest.raises(ValueError, match="threads"):
        SystemSimulator(stack, LiquidLoadBalancing(), trace)


def test_control_period_must_divide_trace_period(short_trace):
    stack = build_3d_mpsoc(2, CoolingMode.LIQUID)
    with pytest.raises(ValueError):
        SystemSimulator(
            stack, LiquidLoadBalancing(), short_trace, control_period=0.3
        )


def test_result_total_energy_property(short_trace):
    result = make_sim(LiquidLoadBalancing(), short_trace).run()
    assert result.total_energy_j == pytest.approx(
        result.chip_energy_j + result.pump_energy_j
    )
