"""Failure paths of the solver guards and the thermal error taxonomy.

Backward Euler on an RC network is unconditionally stable, so organic
divergence cannot be provoked; the retry/backoff machinery is exercised
by poisoning cached LU factors with stand-ins that return NaN, exactly
the corruption the guards exist to survive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import LiquidLoadBalancing
from repro.core.simulator import SystemSimulator
from repro.thermal import (
    CompactThermalModel,
    SolverGuard,
    ThermalInputError,
    ThermalSolveError,
    TransientDivergenceError,
    TransientStepper,
)


class _NaNFactor:
    """A poisoned LU factor: every solve comes back all-NaN."""

    def solve(self, rhs):
        return np.full_like(np.asarray(rhs, dtype=float), np.nan)


# ---------------------------------------------------------------------------
# input validation (satellite: reject bad powers / flows / dt)
# ---------------------------------------------------------------------------


def test_nan_power_raises_thermal_solve_error(
    liquid_model_coarse, uniform_core_powers
):
    powers = dict(uniform_core_powers)
    ref = next(iter(powers))
    powers[ref] = float("nan")
    with pytest.raises(ThermalSolveError):
        liquid_model_coarse.steady_state(powers)


def test_negative_power_rejected(liquid_model_coarse, uniform_core_powers):
    powers = dict(uniform_core_powers)
    ref = next(iter(powers))
    powers[ref] = -2.0
    with pytest.raises(ThermalInputError):
        liquid_model_coarse.steady_state(powers)


def test_input_error_is_also_value_error(
    liquid_model_coarse, uniform_core_powers
):
    """Pre-taxonomy callers catching ValueError keep working."""
    powers = dict(uniform_core_powers)
    powers[next(iter(powers))] = float("inf")
    with pytest.raises(ValueError):
        liquid_model_coarse.steady_state(powers)


@pytest.mark.parametrize("flow", [float("nan"), -1.0, 0.0])
def test_invalid_flow_rejected(liquid_model_coarse, flow):
    with pytest.raises(ThermalInputError):
        liquid_model_coarse.set_flow(flow)


@pytest.mark.parametrize("dt", [float("nan"), 0.0, -0.1])
def test_invalid_dt_rejected(liquid_model_coarse, dt):
    initial = liquid_model_coarse.uniform_field(300.0)
    with pytest.raises(ThermalInputError):
        TransientStepper(liquid_model_coarse, dt, initial)


def test_transient_nan_power_rejected(liquid_model_coarse):
    initial = liquid_model_coarse.uniform_field(300.0)
    stepper = TransientStepper(liquid_model_coarse, 0.1, initial)
    power = np.zeros(liquid_model_coarse.grid.size)
    power[0] = float("nan")
    with pytest.raises(ThermalInputError):
        stepper.step_with_power_vector(power)


def test_invalid_control_period_rejected(liquid_stack_2tier, short_trace):
    with pytest.raises(ThermalInputError):
        SystemSimulator(
            liquid_stack_2tier,
            LiquidLoadBalancing(),
            short_trace,
            control_period=float("nan"),
        )


def test_solver_guard_validation():
    with pytest.raises(ValueError):
        SolverGuard(max_dt_halvings=-1)
    with pytest.raises(ValueError):
        SolverGuard(residual_tolerance=0.0)


# ---------------------------------------------------------------------------
# steady-solve guards (satellite: poisoned-factor eviction)
# ---------------------------------------------------------------------------


def test_poisoned_steady_factor_evicted_and_retried(
    liquid_stack_2tier, uniform_core_powers
):
    model = CompactThermalModel(liquid_stack_2tier, nx=12, ny=10)
    reference = model.steady_state(uniform_core_powers)
    model._steady_factors[model._steady_key(None)] = _NaNFactor()

    field = model.steady_state(uniform_core_powers)

    assert np.all(np.isfinite(field.values))
    np.testing.assert_allclose(field.values, reference.values)
    diagnostics = model.last_steady_diagnostics
    assert diagnostics is not None
    assert diagnostics.kind == "steady"
    assert diagnostics.factor_evictions == 1


def test_unrecoverable_steady_failure_carries_diagnostics(
    liquid_stack_2tier, uniform_core_powers, monkeypatch
):
    model = CompactThermalModel(liquid_stack_2tier, nx=12, ny=10)
    # Every (re)factorisation hands back a poisoned factor, so even the
    # post-eviction retry fails and the taxonomy error must surface.
    monkeypatch.setattr(
        model, "steady_factor", lambda flow_ml_min=None: _NaNFactor()
    )
    with pytest.raises(ThermalSolveError) as excinfo:
        model.steady_state(uniform_core_powers)
    diagnostics = excinfo.value.diagnostics
    assert diagnostics is not None
    assert not diagnostics.finite
    assert diagnostics.factor_evictions == 1


def test_steady_diagnostics_healthy_with_residual_check(
    liquid_stack_2tier, uniform_core_powers
):
    model = CompactThermalModel(
        liquid_stack_2tier,
        nx=12,
        ny=10,
        guard=SolverGuard(residual_tolerance=1e-8),
    )
    model.steady_state(uniform_core_powers)
    diagnostics = model.last_steady_diagnostics
    assert diagnostics is not None
    assert diagnostics.healthy()
    assert diagnostics.residual_norm is not None
    assert diagnostics.residual_norm < 1e-8
    assert diagnostics.condition_estimate is not None
    assert np.isfinite(diagnostics.condition_estimate)
    assert diagnostics.condition_estimate >= 1.0


# ---------------------------------------------------------------------------
# transient guards: eviction, dt backoff, divergence taxonomy
# ---------------------------------------------------------------------------


@pytest.fixture()
def fresh_stepper(liquid_stack_2tier, uniform_core_powers):
    model = CompactThermalModel(liquid_stack_2tier, nx=12, ny=10)
    initial = model.steady_state(uniform_core_powers)
    stepper = TransientStepper(model, 0.1, initial)
    return stepper, uniform_core_powers


def test_poisoned_transient_factor_refactorised(fresh_stepper):
    stepper, powers = fresh_stepper
    stepper.step(powers)  # primes the (signature, dt) cache entry
    key = (stepper.model.flow_signature(), stepper.dt)
    factor, boundary, matrix = stepper._factors[key]
    stepper._factors[key] = (_NaNFactor(), boundary, matrix)

    state = stepper.step(powers)

    assert np.all(np.isfinite(state.values))
    diagnostics = stepper.last_diagnostics
    assert diagnostics is not None
    assert diagnostics.factor_evictions == 1
    assert diagnostics.retries == 0
    assert diagnostics.dt_effective == stepper.dt


def test_dt_backoff_converges_when_full_step_fails(fresh_stepper):
    stepper, powers = fresh_stepper
    reference = stepper.state.values.copy()
    full_dt = stepper.dt
    real_factor = stepper._factor

    def poisoned_at_full_dt(dt=None):
        entry = real_factor(dt)
        if (full_dt if dt is None else dt) == full_dt:
            return (_NaNFactor(), entry[1], entry[2])
        return entry

    stepper._factor = poisoned_at_full_dt
    state = stepper.step(powers)

    assert np.all(np.isfinite(state.values))
    assert stepper.time == pytest.approx(full_dt)
    diagnostics = stepper.last_diagnostics
    assert diagnostics is not None
    assert diagnostics.retries == 1
    assert diagnostics.dt_effective == pytest.approx(full_dt / 2.0)
    assert diagnostics.factor_evictions >= 1
    # Two dt/2 substeps land within the backward-Euler local error of
    # the full step: a small move away from the steady initial state.
    assert np.max(np.abs(state.values - reference)) < 5.0


def test_dt_backoff_exhaustion_raises_divergence_error(fresh_stepper):
    stepper, powers = fresh_stepper
    stepper.guard = SolverGuard(max_dt_halvings=2)
    real_factor = stepper._factor

    def always_poisoned(dt=None):
        entry = real_factor(dt)
        return (_NaNFactor(), entry[1], entry[2])

    stepper._factor = always_poisoned
    before = stepper.state.values.copy()
    with pytest.raises(TransientDivergenceError) as excinfo:
        stepper.step(powers)

    diagnostics = excinfo.value.diagnostics
    assert diagnostics is not None
    assert diagnostics.retries == 2
    assert not diagnostics.finite
    # The failed step must not corrupt the retained state or clock.
    np.testing.assert_array_equal(stepper.state.values, before)
    assert stepper.time == 0.0


def test_transient_residual_check_records_diagnostics(fresh_stepper):
    stepper, powers = fresh_stepper
    stepper.guard = SolverGuard(residual_tolerance=1e-6)
    stepper.step(powers)
    diagnostics = stepper.last_diagnostics
    assert diagnostics is not None
    assert diagnostics.healthy()
    assert diagnostics.residual_norm is not None
    assert diagnostics.residual_norm < 1e-6
    assert diagnostics.condition_estimate is not None
