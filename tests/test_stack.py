"""3D stack construction."""

import pytest

from repro import constants
from repro.geometry import build_3d_mpsoc, CoolingMode, Layer, Cavity, StackDesign
from repro.geometry.niagara import DIE_WIDTH, DIE_HEIGHT
from repro.materials import SILICON


def test_2tier_liquid_structure(liquid_stack_2tier):
    s = liquid_stack_2tier
    assert s.tier_count == 2
    # Cavities sit between adjacent tiers: tiers - 1 of them.
    assert s.cavity_count == 1
    assert s.cooling_mode is CoolingMode.LIQUID
    assert s.elements[-1].name == "lid"


def test_4tier_liquid_has_three_cavities():
    s = build_3d_mpsoc(4)
    assert s.tier_count == 4
    assert s.cavity_count == 3


def test_air_stack_has_no_cavities_and_a_tim(air_stack_2tier):
    s = air_stack_2tier
    assert s.cavity_count == 0
    assert s.elements[-1].name == "tim"


def test_core_and_cache_tiers_alternate():
    s = build_3d_mpsoc(4)
    kinds = []
    for layer in s.source_layers:
        blocks = layer.floorplan.blocks_of_kind("core")
        kinds.append("core" if blocks else "cache")
    assert kinds == ["core", "cache", "core", "cache"]


def test_4tier_has_16_uniquely_named_cores():
    s = build_3d_mpsoc(4)
    cores = [
        block.name for _, block in s.iter_blocks() if block.kind == "core"
    ]
    assert len(cores) == 16
    assert len(set(cores)) == 16


def test_die_thickness_from_table_i():
    s = build_3d_mpsoc(2)
    for layer in s.source_layers:
        assert layer.thickness == constants.DIE_THICKNESS
        assert layer.material is SILICON


def test_cavity_geometry_from_table_i():
    s = build_3d_mpsoc(2)
    geom = s.cavities[0].geometry
    assert geom.width == constants.CHANNEL_WIDTH
    assert geom.pitch == constants.CHANNEL_PITCH
    assert geom.height == constants.INTERTIER_THICKNESS


def test_footprint_matches_table_i_layer_area():
    s = build_3d_mpsoc(2)
    assert s.area == pytest.approx(constants.LAYER_AREA)


def test_odd_tier_count_rejected():
    with pytest.raises(ValueError):
        build_3d_mpsoc(3)
    with pytest.raises(ValueError):
        build_3d_mpsoc(0)


def test_block_refs_cover_all_source_blocks(liquid_stack_2tier):
    refs = liquid_stack_2tier.block_refs()
    assert len(refs) == len(set(refs))
    core_refs = [r for r in refs if r[1].startswith("core")]
    assert len(core_refs) == 8


def test_duplicate_element_names_rejected():
    layer = Layer("a", SILICON, 1e-4)
    with pytest.raises(ValueError, match="unique"):
        StackDesign(
            name="bad",
            width=DIE_WIDTH,
            height=DIE_HEIGHT,
            elements=[layer, Layer("a", SILICON, 1e-4)],
        )


def test_mismatched_floorplan_rejected():
    from repro.geometry import core_tier_floorplan

    plan = core_tier_floorplan()
    with pytest.raises(ValueError, match="outline"):
        StackDesign(
            name="bad",
            width=DIE_WIDTH * 2,
            height=DIE_HEIGHT,
            elements=[Layer("die", SILICON, 1e-4, floorplan=plan)],
        )


def test_element_lookup(liquid_stack_2tier):
    cavity = liquid_stack_2tier.element("cavity0")
    assert isinstance(cavity, Cavity)
    with pytest.raises(KeyError):
        liquid_stack_2tier.element("nope")


def test_total_thickness_is_sum_of_elements(liquid_stack_2tier):
    s = liquid_stack_2tier
    assert s.total_thickness == pytest.approx(
        sum(e.thickness for e in s.elements)
    )
