"""The sweep engine: batched steady solves and simulation fan-out."""

import numpy as np
import pytest

from repro.analysis import (
    SimulationJob,
    SteadyCase,
    SteadySweep,
    fan_out,
    run_simulations,
)
from repro.core import paper_policies
from repro.geometry import build_3d_mpsoc
from repro.thermal import CompactThermalModel
from repro.workload import paper_workload_suite


def _cases(model, flows):
    rng = np.random.default_rng(2)
    cases = []
    for k, flow in enumerate(flows):
        powers = {
            ref: float(p)
            for ref, p in zip(
                model.block_order,
                rng.uniform(0.5, 4.0, len(model.block_order)),
            )
        }
        cases.append(SteadyCase(block_powers=powers, flow_ml_min=flow))
    return cases


def test_steady_sweep_matches_point_by_point_bitwise():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    cases = _cases(model, [None, 30.0, 30.0, 55.0, None, 55.0])
    swept = SteadySweep(model).solve(cases)
    for case, field in zip(cases, swept):
        direct = model.steady_state(dict(case.block_powers), case.flow_ml_min)
        assert np.array_equal(field.values, direct.values)


def test_steady_sweep_factorises_once_per_flow():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    sweep = SteadySweep(model)
    sweep.solve(_cases(model, [20.0, 20.0, 20.0, 45.0, 45.0, None]))
    info = model.steady_cache_info()
    # Three distinct flow states, six cases: three factorisations.
    assert info.misses == 3
    # A repeat sweep is all cache hits.
    sweep.solve(_cases(model, [20.0, 45.0, None]))
    assert model.steady_cache_info().misses == 3


def test_peak_temperatures_monotonic_in_flow():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    powers = {ref: 3.0 for ref in model.block_order}
    flows = [15.0, 30.0, 60.0, 120.0]
    peaks = SteadySweep(model).peak_temperatures(
        [SteadyCase(powers, flow) for flow in flows]
    )
    assert np.all(np.diff(peaks) < 0.0)  # more coolant, cooler stack


def _square(x):
    return x * x


def test_fan_out_orders_and_parallelises():
    items = list(range(8))
    serial = fan_out(_square, items)
    assert serial == [x * x for x in items]
    parallel = fan_out(_square, items, processes=2)
    assert parallel == serial


@pytest.mark.parametrize("processes", [None, 2])
def test_run_simulations_fan_out(processes):
    policies = {p.name: p for p in paper_policies()}
    policy = policies["LC_LB"]
    suite = paper_workload_suite(threads=32, duration=2)
    jobs = [
        SimulationJob(
            stack=build_3d_mpsoc(2, policy.cooling),
            policy=policy,
            trace=suite[workload],
            key=workload,
            kwargs={"nx": 12, "ny": 10},
        )
        for workload in ("web", "database")
    ]
    results = run_simulations(jobs, processes=processes)
    assert [key for key, _ in results] == ["web", "database"]
    for key, result in results:
        assert result.workload == key
        assert result.duration == pytest.approx(2.0)
        assert result.peak_temperature_c > 27.0
