"""Temperature-triggered DVFS."""

import pytest

from repro.core import TemperatureTriggeredDVFS
from repro.units import celsius_to_kelvin


def k(c):
    return celsius_to_kelvin(c)


def test_scales_down_above_trigger():
    dvfs = TemperatureTriggeredDVFS()
    settings = dvfs.update(0.0, {"c0": k(86.0)})
    assert settings["c0"] == 1


def test_scales_down_one_step_per_interval():
    dvfs = TemperatureTriggeredDVFS(scaling_interval=0.1)
    dvfs.update(0.0, {"c0": k(90.0)})
    # Immediately again: interval not elapsed, no further step.
    settings = dvfs.update(0.05, {"c0": k(90.0)})
    assert settings["c0"] == 1
    settings = dvfs.update(0.1, {"c0": k(90.0)})
    assert settings["c0"] == 2


def test_saturates_at_lowest_setting():
    dvfs = TemperatureTriggeredDVFS(scaling_interval=0.1)
    t = 0.0
    for _ in range(10):
        settings = dvfs.update(t, {"c0": k(95.0)})
        t += 0.1
    assert settings["c0"] == dvfs.vf_table.lowest_index


def test_scales_up_below_release():
    dvfs = TemperatureTriggeredDVFS(scaling_interval=0.1)
    dvfs.update(0.0, {"c0": k(86.0)})
    settings = dvfs.update(0.2, {"c0": k(81.0)})
    assert settings["c0"] == 0


def test_hysteresis_band_holds_setting():
    """Between 82 and 85 degC the setting must not change."""
    dvfs = TemperatureTriggeredDVFS(scaling_interval=0.1)
    dvfs.update(0.0, {"c0": k(86.0)})
    settings = dvfs.update(0.2, {"c0": k(83.5)})
    assert settings["c0"] == 1
    settings = dvfs.update(0.4, {"c0": k(84.9)})
    assert settings["c0"] == 1


def test_cores_are_independent():
    dvfs = TemperatureTriggeredDVFS()
    settings = dvfs.update(0.0, {"hot": k(90.0), "cool": k(60.0)})
    assert settings["hot"] == 1
    assert settings["cool"] == 0


def test_reset_clears_state():
    dvfs = TemperatureTriggeredDVFS()
    dvfs.update(0.0, {"c0": k(90.0)})
    dvfs.reset()
    assert dvfs.setting("c0") == 0


def test_paper_thresholds_by_default():
    dvfs = TemperatureTriggeredDVFS()
    assert dvfs.trigger_k == pytest.approx(k(85.0))
    assert dvfs.release_k == pytest.approx(k(82.0))


def test_invalid_thresholds_rejected():
    with pytest.raises(ValueError):
        TemperatureTriggeredDVFS(trigger_k=k(80.0), release_k=k(85.0))
    with pytest.raises(ValueError):
        TemperatureTriggeredDVFS(scaling_interval=0.0)
