"""Thermal-grid indexing and bookkeeping."""

import numpy as np
import pytest

from repro.thermal import ThermalGrid


def test_grid_dimensions(liquid_stack_2tier):
    grid = ThermalGrid(liquid_stack_2tier, nx=12, ny=10)
    assert grid.levels == len(liquid_stack_2tier.elements)
    assert grid.cells_per_level == 120
    assert not grid.has_sink_node
    assert grid.size == grid.levels * 120


def test_air_grid_has_sink_node(air_stack_2tier):
    grid = ThermalGrid(air_stack_2tier, nx=12, ny=10)
    assert grid.has_sink_node
    assert grid.size == grid.levels * 120 + 1
    assert grid.sink_index == grid.levels * 120


def test_liquid_grid_has_no_sink_index(liquid_stack_2tier):
    grid = ThermalGrid(liquid_stack_2tier, nx=12, ny=10)
    with pytest.raises(AttributeError):
        _ = grid.sink_index


def test_index_roundtrip(liquid_stack_2tier):
    grid = ThermalGrid(liquid_stack_2tier, nx=12, ny=10)
    idx = grid.index(2, 3, 4)
    assert idx == 2 * 120 + 3 * 12 + 4
    with pytest.raises(IndexError):
        grid.index(99, 0, 0)
    with pytest.raises(IndexError):
        grid.index(0, 10, 0)


def test_level_view_shares_memory(liquid_stack_2tier):
    grid = ThermalGrid(liquid_stack_2tier, nx=12, ny=10)
    vec = np.zeros(grid.size)
    view = grid.level_view(vec, 1)
    view[3, 4] = 42.0
    assert vec[grid.index(1, 3, 4)] == 42.0


def test_cell_geometry(liquid_stack_2tier):
    grid = ThermalGrid(liquid_stack_2tier, nx=23, ny=20)
    assert grid.dx == pytest.approx(0.5e-3)
    assert grid.dy == pytest.approx(0.5e-3)
    assert grid.cell_area == pytest.approx(0.25e-6)
    xs, ys = grid.cell_centres()
    assert xs[0] == pytest.approx(0.25e-3)
    assert ys[-1] == pytest.approx(liquid_stack_2tier.height - 0.25e-3)


def test_level_lookup_by_name(liquid_stack_2tier):
    grid = ThermalGrid(liquid_stack_2tier, nx=12, ny=10)
    assert grid.level_of("cavity0") == 2  # wiring, die, cavity, ...
    with pytest.raises(ValueError):
        grid.level_of("missing")


def test_too_coarse_grid_rejected(liquid_stack_2tier):
    with pytest.raises(ValueError):
        ThermalGrid(liquid_stack_2tier, nx=1, ny=10)
