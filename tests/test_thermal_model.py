"""Compact thermal model: physics and conservation properties."""

import numpy as np
import pytest

from repro import constants
from repro.geometry import build_3d_mpsoc, CoolingMode
from repro.thermal import CompactThermalModel, dense_steady_state
from repro.units import celsius_to_kelvin


def core_powers(stack, watts=5.0):
    return {
        (layer.name, block.name): watts
        for layer, block in stack.iter_blocks()
        if block.kind == "core"
    }


# ---------------------------------------------------------------------------
# conservation and correctness
# ---------------------------------------------------------------------------


def test_liquid_steady_state_conserves_energy(liquid_model_coarse, liquid_stack_2tier):
    powers = core_powers(liquid_stack_2tier)
    field = liquid_model_coarse.steady_state(powers)
    removed = liquid_model_coarse.heat_removed_by_coolant(field)
    assert removed == pytest.approx(sum(powers.values()), rel=1e-9)


def test_air_steady_state_conserves_energy(air_model_coarse, air_stack_2tier):
    powers = core_powers(air_stack_2tier)
    field = air_model_coarse.steady_state(powers)
    removed = air_model_coarse.heat_removed_by_sink(field)
    assert removed == pytest.approx(sum(powers.values()), rel=1e-9)


def test_sparse_matches_dense_reference(liquid_model_coarse, liquid_stack_2tier):
    powers = core_powers(liquid_stack_2tier)
    sparse = liquid_model_coarse.steady_state(powers)
    dense = dense_steady_state(liquid_model_coarse, powers)
    assert np.allclose(sparse.values, dense.values, rtol=1e-8, atol=1e-8)


def test_zero_power_settles_at_boundary_temperatures(liquid_model_coarse):
    field = liquid_model_coarse.steady_state({})
    assert np.allclose(
        field.values, liquid_model_coarse.inlet_temperature, atol=1e-6
    )


def test_zero_power_air_settles_at_ambient(air_model_coarse):
    field = air_model_coarse.steady_state({})
    assert np.allclose(field.values, air_model_coarse.ambient, atol=1e-6)


def test_all_temperatures_above_boundary(liquid_model_coarse, liquid_stack_2tier):
    field = liquid_model_coarse.steady_state(core_powers(liquid_stack_2tier))
    assert field.values.min() >= liquid_model_coarse.inlet_temperature - 1e-9


# ---------------------------------------------------------------------------
# physical behaviour
# ---------------------------------------------------------------------------


def test_higher_flow_lower_peak(liquid_model_coarse, liquid_stack_2tier):
    powers = core_powers(liquid_stack_2tier)
    hot = liquid_model_coarse.steady_state(powers, flow_ml_min=10.0)
    cold = liquid_model_coarse.steady_state(powers, flow_ml_min=32.3)
    assert cold.max() < hot.max()


def test_fluid_heats_downstream(liquid_model_coarse, liquid_stack_2tier):
    powers = core_powers(liquid_stack_2tier)
    field = liquid_model_coarse.steady_state(powers)
    cavity = field.layer("cavity0")
    inlet_column = cavity[:, 0].mean()
    outlet_column = cavity[:, -1].mean()
    assert outlet_column > inlet_column


def test_bulk_fluid_rise_matches_power_balance(liquid_model_coarse, liquid_stack_2tier):
    """Outlet mean rise = P / (mdot cp): the 40 K@130 W scaling of II-C."""
    powers = core_powers(liquid_stack_2tier)
    total = sum(powers.values())
    model = liquid_model_coarse
    field = model.steady_state(powers)
    cavity = field.layer("cavity0")
    capacity = model._capacity_rate_per_row(model.flow_ml_min) * model.grid.ny
    expected_rise = total / capacity
    actual_rise = cavity[:, -1].mean() - model.inlet_temperature
    # Mean outlet fluid temperature reflects the full absorbed power.
    assert actual_rise == pytest.approx(expected_rise, rel=0.05)


def test_hotter_with_more_power(air_model_coarse, air_stack_2tier):
    low = air_model_coarse.steady_state(core_powers(air_stack_2tier, 2.0))
    high = air_model_coarse.steady_state(core_powers(air_stack_2tier, 6.0))
    assert high.max() > low.max()


def test_air_peak_sits_on_source_layer(air_model_coarse, air_stack_2tier):
    field = air_model_coarse.steady_state(core_powers(air_stack_2tier))
    peak = field.max()
    core_layers = [layer.name for layer in air_stack_2tier.source_layers]
    layer_maxima = [field.layer(name).max() for name in core_layers]
    assert max(layer_maxima) == pytest.approx(peak)


def test_liquid_4tier_cooler_than_2tier_at_equal_per_tier_power():
    """The paper's observation: more cavities keep the 4-tier stack cooler."""
    m2 = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    m4 = CompactThermalModel(build_3d_mpsoc(4), nx=12, ny=10)
    f2 = m2.steady_state(core_powers(m2.stack))
    f4 = m4.steady_state(core_powers(m4.stack))
    assert f4.max() < f2.max()


def test_air_4tier_much_hotter_than_2tier():
    m2 = CompactThermalModel(build_3d_mpsoc(2, CoolingMode.AIR), nx=12, ny=10)
    m4 = CompactThermalModel(build_3d_mpsoc(4, CoolingMode.AIR), nx=12, ny=10)
    f2 = m2.steady_state(core_powers(m2.stack))
    f4 = m4.steady_state(core_powers(m4.stack))
    assert f4.max() - celsius_to_kelvin(0.0) > 1.5 * (
        f2.max() - celsius_to_kelvin(0.0)
    )


# ---------------------------------------------------------------------------
# interface behaviour
# ---------------------------------------------------------------------------


def test_unknown_block_rejected(liquid_model_coarse):
    with pytest.raises(KeyError):
        liquid_model_coarse.power_vector({("tier0_die", "gpu99"): 1.0})


def test_negative_power_rejected(liquid_model_coarse, liquid_stack_2tier):
    ref = liquid_stack_2tier.block_refs()[0]
    with pytest.raises(ValueError):
        liquid_model_coarse.power_vector({ref: -1.0})


def test_power_vector_total_preserved(liquid_model_coarse, liquid_stack_2tier):
    powers = core_powers(liquid_stack_2tier, 3.3)
    vec = liquid_model_coarse.power_vector(powers)
    assert vec.sum() == pytest.approx(sum(powers.values()), rel=1e-12)


def test_set_flow_validation(liquid_model_coarse):
    with pytest.raises(ValueError):
        liquid_model_coarse.set_flow(0.0)


def test_flow_default_is_table_i_maximum(liquid_stack_2tier):
    model = CompactThermalModel(liquid_stack_2tier, nx=12, ny=10)
    assert model.flow_ml_min == constants.FLOW_RATE_MAX_ML_MIN


def test_block_masks_cover_source_layers(liquid_model_coarse, liquid_stack_2tier):
    masks = liquid_model_coarse.block_masks()
    for layer in liquid_stack_2tier.source_layers:
        layer_masks = [m for (ln, _), m in masks.items() if ln == layer.name]
        union = np.zeros_like(layer_masks[0], dtype=int)
        for m in layer_masks:
            union += m.astype(int)
        assert (union == 1).all()  # exact partition of the die
