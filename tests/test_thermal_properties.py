"""Property-based invariants of the thermal substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import build_3d_mpsoc
from repro.thermal import CompactThermalModel

pytestmark = pytest.mark.filterwarnings("ignore::scipy.sparse.SparseEfficiencyWarning")


@pytest.fixture(scope="module")
def model():
    return CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)


def random_powers(model, values):
    refs = model.stack.block_refs()
    return {ref: w for ref, w in zip(refs, values)}


@given(
    values=st.lists(
        st.floats(0.0, 8.0, allow_nan=False), min_size=24, max_size=24
    )
)
@settings(max_examples=25, deadline=None)
def test_energy_conserved_for_any_power_pattern(model, values):
    """Steady state: coolant removes exactly the injected power, for
    arbitrary (non-negative) block power patterns."""
    powers = random_powers(model, values)
    field = model.steady_state(powers)
    removed = model.heat_removed_by_coolant(field)
    assert removed == pytest.approx(sum(powers.values()), abs=1e-6, rel=1e-9)


@given(
    values=st.lists(
        st.floats(0.0, 8.0, allow_nan=False), min_size=24, max_size=24
    )
)
@settings(max_examples=25, deadline=None)
def test_minimum_principle(model, values):
    """No cell may fall below the coolant inlet temperature (maximum
    principle of the discrete elliptic operator with positive sources)."""
    powers = random_powers(model, values)
    field = model.steady_state(powers)
    assert field.values.min() >= model.inlet_temperature - 1e-9


@given(
    values=st.lists(
        st.floats(0.0, 5.0, allow_nan=False), min_size=24, max_size=24
    ),
    extra=st.floats(0.5, 5.0),
    index=st.integers(0, 23),
)
@settings(max_examples=20, deadline=None)
def test_monotonicity_in_power(model, values, extra, index):
    """Adding power anywhere can cool nothing (operator monotonicity)."""
    base = random_powers(model, values)
    bumped = dict(base)
    ref = model.stack.block_refs()[index]
    bumped[ref] = bumped[ref] + extra
    field_base = model.steady_state(base)
    field_bumped = model.steady_state(bumped)
    assert np.all(field_bumped.values >= field_base.values - 1e-9)


@given(flow=st.floats(10.0, 32.3))
@settings(max_examples=15, deadline=None)
def test_superposition_linearity(model, flow):
    """The model is linear: doubling all powers doubles every rise."""
    refs = model.stack.block_refs()
    powers = {ref: 2.0 for ref in refs}
    doubled = {ref: 4.0 for ref in refs}
    f1 = model.steady_state(powers, flow_ml_min=flow)
    f2 = model.steady_state(doubled, flow_ml_min=flow)
    rise1 = f1.values - model.inlet_temperature
    rise2 = f2.values - model.inlet_temperature
    assert np.allclose(rise2, 2.0 * rise1, rtol=1e-9, atol=1e-9)


@given(
    flow_low=st.floats(10.0, 20.0),
    flow_delta=st.floats(1.0, 12.0),
)
@settings(max_examples=15, deadline=None)
def test_peak_monotone_in_flow(model, flow_low, flow_delta):
    flow_high = min(32.3, flow_low + flow_delta)
    powers = {ref: 3.0 for ref in model.stack.block_refs()}
    hot = model.steady_state(powers, flow_ml_min=flow_low).max()
    cold = model.steady_state(powers, flow_ml_min=flow_high).max()
    assert cold <= hot + 1e-9
