"""Transient stepping: convergence, caching, dynamics."""

import numpy as np
import pytest

from repro.thermal import CompactThermalModel, TransientStepper
from repro.thermal.reference import dense_transient


def core_powers(stack, watts=5.0):
    return {
        (layer.name, block.name): watts
        for layer, block in stack.iter_blocks()
        if block.kind == "core"
    }


def test_transient_converges_to_steady_state(liquid_model_coarse, liquid_stack_2tier):
    model = liquid_model_coarse
    powers = core_powers(liquid_stack_2tier)
    steady = model.steady_state(powers)
    stepper = TransientStepper(model, dt=0.1, initial=model.uniform_field(300.15))
    stepper.run(powers, duration=60.0)
    assert np.allclose(stepper.state.values, steady.values, atol=0.05)


def test_constant_power_from_steady_state_stays_put(
    liquid_model_coarse, liquid_stack_2tier
):
    model = liquid_model_coarse
    powers = core_powers(liquid_stack_2tier)
    steady = model.steady_state(powers)
    stepper = TransientStepper(model, dt=0.1, initial=steady)
    stepper.run(powers, duration=1.0)
    assert np.allclose(stepper.state.values, steady.values, atol=1e-6)


def test_step_matches_dense_reference(liquid_model_coarse, liquid_stack_2tier):
    model = liquid_model_coarse
    powers = core_powers(liquid_stack_2tier)
    initial = model.uniform_field(310.0)
    stepper = TransientStepper(model, dt=0.1, initial=initial)
    for _ in range(5):
        stepper.step(powers)
    dense = dense_transient(model, powers, initial, dt=0.1, steps=5)
    assert np.allclose(stepper.state.values, dense.values, rtol=1e-8, atol=1e-7)


def test_temperature_rises_monotonically_under_step_load(
    liquid_model_coarse, liquid_stack_2tier
):
    model = liquid_model_coarse
    powers = core_powers(liquid_stack_2tier)
    stepper = TransientStepper(model, dt=0.1, initial=model.uniform_field(300.15))
    maxima = []
    for _ in range(20):
        maxima.append(stepper.step(powers).max())
    assert all(b >= a - 1e-9 for a, b in zip(maxima, maxima[1:]))


def test_lu_cache_one_factor_per_flow_setting(
    liquid_model_coarse, liquid_stack_2tier
):
    model = liquid_model_coarse
    powers = core_powers(liquid_stack_2tier)
    stepper = TransientStepper(model, dt=0.1, initial=model.uniform_field(300.15))
    for flow in (10.0, 20.0, 32.3, 10.0, 32.3, 20.0):
        model.set_flow(flow)
        stepper.step(powers)
    assert stepper.cached_factor_count == 3


def test_lru_eviction_bounds_cache(liquid_model_coarse, liquid_stack_2tier):
    model = liquid_model_coarse
    powers = core_powers(liquid_stack_2tier)
    stepper = TransientStepper(
        model, dt=0.1, initial=model.uniform_field(300.15), max_cached_factors=2
    )
    for flow in (10.0, 15.0, 20.0, 25.0):
        model.set_flow(flow)
        stepper.step(powers)
    assert stepper.cached_factor_count == 2


def test_time_advances(liquid_model_coarse, liquid_stack_2tier):
    model = liquid_model_coarse
    stepper = TransientStepper(model, dt=0.25, initial=model.uniform_field(300.15))
    stepper.run(core_powers(liquid_stack_2tier), duration=1.0)
    assert stepper.time == pytest.approx(1.0)
    assert stepper.state.time == pytest.approx(1.0)


def test_invalid_parameters_rejected(liquid_model_coarse):
    with pytest.raises(ValueError):
        TransientStepper(
            liquid_model_coarse, dt=0.0, initial=liquid_model_coarse.uniform_field(300.0)
        )
    with pytest.raises(ValueError):
        TransientStepper(
            liquid_model_coarse,
            dt=0.1,
            initial=liquid_model_coarse.uniform_field(300.0),
            max_cached_factors=0,
        )


def test_air_sink_time_constant_visible(air_model_coarse, air_stack_2tier):
    """The 140 J/K sink dominates the air-cooled transient (~14 s RC)."""
    model = air_model_coarse
    powers = core_powers(air_stack_2tier)
    stepper = TransientStepper(model, dt=0.5, initial=model.uniform_field(model.ambient))
    stepper.run(powers, duration=5.0)
    early_sink = stepper.state.sink_temperature()
    stepper.run(powers, duration=60.0)
    late_sink = stepper.state.sink_temperature()
    # After 5 s the sink is still far from its final value.
    assert late_sink - model.ambient > 1.5 * (early_sink - model.ambient)
