"""Workload trace container and generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (
    WorkloadTrace,
    web_server_trace,
    database_trace,
    multimedia_trace,
    max_utilisation_trace,
    idle_trace,
    paper_workload_suite,
)


def test_trace_shape_and_duration():
    t = WorkloadTrace("t", np.zeros((30, 32)))
    assert t.intervals == 30
    assert t.threads == 32
    assert t.duration == pytest.approx(30.0)


def test_trace_validation():
    with pytest.raises(ValueError):
        WorkloadTrace("bad", np.full((5, 4), 1.5))
    with pytest.raises(ValueError):
        WorkloadTrace("bad", np.zeros((5,)))
    with pytest.raises(ValueError):
        WorkloadTrace("bad", np.zeros((0, 4)))


def test_truncation():
    t = WorkloadTrace("t", np.random.default_rng(0).random((30, 8)))
    short = t.truncated(10)
    assert short.intervals == 10
    assert np.array_equal(short.utilisation, t.utilisation[:10])
    with pytest.raises(ValueError):
        t.truncated(0)
    with pytest.raises(ValueError):
        t.truncated(31)


@pytest.mark.parametrize(
    "factory,low,high",
    [
        (web_server_trace, 0.25, 0.55),
        (database_trace, 0.60, 0.80),
        (multimedia_trace, 0.40, 0.60),
        (max_utilisation_trace, 0.85, 0.98),
        (idle_trace, 0.02, 0.18),
    ],
)
def test_generator_mean_utilisation_bands(factory, low, high):
    trace = factory(threads=32, duration=120, seed=11)
    assert low < trace.mean_utilisation < high


@pytest.mark.parametrize(
    "factory",
    [web_server_trace, database_trace, multimedia_trace, max_utilisation_trace],
)
def test_generators_are_seed_reproducible(factory):
    a = factory(threads=16, duration=50, seed=3)
    b = factory(threads=16, duration=50, seed=3)
    assert np.array_equal(a.utilisation, b.utilisation)
    c = factory(threads=16, duration=50, seed=4)
    assert not np.array_equal(a.utilisation, c.utilisation)


def test_web_trace_is_burstier_than_database():
    web = web_server_trace(duration=200, seed=1)
    db = database_trace(duration=200, seed=1)
    web_std = web.utilisation.mean(axis=1).std()
    db_std = db.utilisation.mean(axis=1).std()
    assert web_std > db_std


def test_multimedia_trace_is_periodic():
    # Per-thread phases are random, so inspect a single thread: its
    # square-wave fundamental at 1/8 Hz dominates the spectrum.
    mm = multimedia_trace(duration=160, seed=2)
    signal = mm.utilisation[:, 0] - mm.utilisation[:, 0].mean()
    spectrum = np.abs(np.fft.rfft(signal))
    freqs = np.fft.rfftfreq(len(signal), d=1.0)
    dominant = freqs[spectrum.argmax()]
    assert dominant == pytest.approx(1.0 / 8.0, abs=0.02)


def test_suite_contents():
    suite = paper_workload_suite(duration=30)
    assert set(suite) == {"web", "database", "multimedia", "max-utilisation"}
    for trace in suite.values():
        assert trace.intervals == 30
        assert trace.threads == 32


def test_peak_interval_statistic():
    t = WorkloadTrace("t", np.array([[0.2, 0.4], [0.9, 0.7], [0.1, 0.1]]))
    assert t.peak_interval_utilisation == pytest.approx(0.8)


@given(st.integers(8, 64), st.integers(10, 60), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_generators_always_in_unit_interval(threads, duration, seed):
    trace = web_server_trace(threads, duration, seed)
    assert trace.utilisation.min() >= 0.0
    assert trace.utilisation.max() <= 1.0
