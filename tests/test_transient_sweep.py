"""TransientSweep: batched multi-trace stepping, bitwise vs sequential."""

import numpy as np
import pytest

from repro.analysis import TransientSweep
from repro.geometry import build_3d_mpsoc
from repro.thermal import CompactThermalModel, TransientStepper
from repro.thermal.diagnostics import ThermalInputError


def _traces(model, n_traces, steps, seed=11):
    rng = np.random.default_rng(seed)
    n_blocks = len(model.block_order)
    return [
        rng.uniform(0.2, 4.0, (steps, n_blocks)) for _ in range(n_traces)
    ]


def _sequential(model, dt, initials, traces):
    """Reference: each trace through its own direct stepper."""
    finals = []
    peaks = np.empty((traces[0].shape[0], len(traces)))
    for column, (initial, trace) in enumerate(zip(initials, traces)):
        stepper = TransientStepper(model, dt, initial, solver="direct")
        for step, row in enumerate(trace):
            stepper.step_packed(row)
            peaks[step, column] = stepper.state.values.max()
        finals.append(stepper.state)
    return finals, peaks


def test_batched_bitwise_equals_sequential():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    traces = _traces(model, 5, 8)
    initial = model.steady_state({ref: 1.5 for ref in model.block_order})
    result = TransientSweep(model, 0.1).run(traces, initial)
    finals, peaks = _sequential(model, 0.1, [initial] * 5, traces)
    assert result.steps == 8
    assert result.peak_k.shape == (8, 5)
    for column, reference in enumerate(finals):
        assert np.array_equal(
            result.fields[column].values, reference.values
        )
        assert result.fields[column].time == reference.time
    assert np.array_equal(result.peak_k, peaks)


def test_per_trace_initial_fields():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    traces = _traces(model, 2, 4, seed=3)
    initials = [
        model.steady_state({ref: 1.0 for ref in model.block_order}),
        model.steady_state({ref: 3.0 for ref in model.block_order}),
    ]
    result = TransientSweep(model, 0.1).run(traces, initials)
    finals, _ = _sequential(model, 0.1, initials, traces)
    for column, reference in enumerate(finals):
        assert np.array_equal(
            result.fields[column].values, reference.values
        )


def test_one_factorisation_serves_all_traces():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    sweep = TransientSweep(model, 0.1)
    initial = model.steady_state({ref: 1.0 for ref in model.block_order})
    sweep.run(_traces(model, 6, 4), initial)
    info = sweep.cache_info()
    # Four steps over six traces: one factorisation, three cache hits.
    assert info.misses == 1
    assert info.hits == 3


def test_shape_and_count_validation():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    sweep = TransientSweep(model, 0.1)
    initial = model.steady_state({ref: 1.0 for ref in model.block_order})
    n_blocks = len(model.block_order)
    with pytest.raises(ValueError):
        sweep.run([], initial)
    with pytest.raises(ValueError):
        sweep.run(
            [np.ones((4, n_blocks)), np.ones((3, n_blocks))], initial
        )
    with pytest.raises(ValueError):
        sweep.run([np.ones((4, n_blocks + 1))], initial)
    with pytest.raises(ValueError):
        # Two initial fields for three traces.
        sweep.run(
            [np.ones((2, n_blocks))] * 3, [initial, initial]
        )


def test_guard_rejects_bad_power_traces():
    model = CompactThermalModel(build_3d_mpsoc(2), nx=12, ny=10)
    sweep = TransientSweep(model, 0.1)
    initial = model.steady_state({ref: 1.0 for ref in model.block_order})
    n_blocks = len(model.block_order)
    bad = np.ones((3, n_blocks))
    bad[1, 0] = np.nan
    with pytest.raises(ThermalInputError):
        sweep.run([bad], initial)
    negative = np.ones((3, n_blocks))
    negative[2, 1] = -0.5
    with pytest.raises(ThermalInputError):
        sweep.run([negative], initial)
