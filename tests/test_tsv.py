"""TSV arrays (Section II-B demonstrators)."""

import math

import pytest

from repro.geometry import TSVArray
from repro.materials import SILICON
from repro.materials.solids import COPPER


def test_demonstrator_diameter_range():
    # Section II-B: 40 - 100 um Cu TSVs in a 380 um wafer.
    for d in (40e-6, 70e-6, 100e-6):
        tsv = TSVArray(diameter=d, pitch=3 * d, length=380e-6)
        assert tsv.copper_area == pytest.approx(math.pi * d**2 / 4)


def test_channel_width_constraint():
    """Section II-C: 'the maximal channel width, given by the TSV
    spacing'."""
    tsv = TSVArray(diameter=50e-6, pitch=150e-6)
    assert tsv.max_channel_width == pytest.approx(
        150e-6 - 50e-6 - 2 * 200e-9
    )
    # The Table I 50 um channel fits this grid; a 120 um one does not.
    assert tsv.allows_channel(50e-6)
    assert not tsv.allows_channel(120e-6)


def test_via_thermal_conductance():
    tsv = TSVArray(diameter=50e-6, length=380e-6)
    expected = COPPER.conductivity * tsv.copper_area / 380e-6
    assert tsv.via_thermal_conductance() == pytest.approx(expected)


def test_effective_conductivity_between_host_and_copper():
    tsv = TSVArray(diameter=60e-6, pitch=150e-6)
    k_eff = tsv.effective_vertical_conductivity(SILICON)
    assert SILICON.conductivity < k_eff < COPPER.conductivity


def test_reinforced_wall_material_is_drop_in():
    tsv = TSVArray()
    wall = tsv.reinforced_wall_material()
    assert wall.conductivity > SILICON.conductivity
    assert "TSV" in wall.name


def test_reinforced_wall_lowers_stack_temperature():
    """Embedding TSVs in the cavity walls stiffens the inter-tier
    conduction path."""
    from repro.geometry import Cavity, build_3d_mpsoc
    from repro.thermal import CompactThermalModel

    plain = build_3d_mpsoc(2)
    powers = {
        (l.name, b.name): 5.0
        for l, b in plain.iter_blocks()
        if b.kind == "core"
    }
    tsv_wall = TSVArray(diameter=80e-6, pitch=150e-6).reinforced_wall_material()
    reinforced = build_3d_mpsoc(2)
    cavity = reinforced.element("cavity0")
    reinforced.elements[reinforced.elements.index(cavity)] = Cavity(
        name=cavity.name,
        geometry=cavity.geometry,
        coolant=cavity.coolant,
        wall_material=tsv_wall,
    )
    t_plain = CompactThermalModel(plain, nx=12, ny=10).steady_state(powers).max()
    t_tsv = CompactThermalModel(reinforced, nx=12, ny=10).steady_state(powers).max()
    assert t_tsv < t_plain


def test_via_resistance_order_of_magnitude():
    # ~mOhm-class for a 50 um x 380 um Cu via.
    tsv = TSVArray(diameter=50e-6, length=380e-6)
    assert 1e-3 < tsv.via_resistance() < 10e-3


def test_daisy_chain_accumulates():
    tsv = TSVArray()
    one = tsv.daisy_chain_resistance(1)
    ten = tsv.daisy_chain_resistance(10)
    assert one == pytest.approx(tsv.via_resistance())
    assert ten > 10 * one  # links add on top


def test_liner_capacitance_positive_and_small():
    tsv = TSVArray()
    c = tsv.liner_capacitance()
    assert 0.0 < c < 1e-9  # sub-nF per via


def test_validation():
    with pytest.raises(ValueError):
        TSVArray(diameter=150e-6, pitch=150e-6)
    with pytest.raises(ValueError):
        TSVArray(diameter=0.0)
    with pytest.raises(ValueError):
        TSVArray().allows_channel(0.0)
    with pytest.raises(ValueError):
        TSVArray().daisy_chain_resistance(0)
