"""Two-phase cavities inside the compact stack model (Section III
applied to the MPSoC targets)."""

import pytest

from repro.geometry import TwoPhaseCavity, build_3d_mpsoc, refrigerant_liquid
from repro.materials import R134A, R245FA
from repro.thermal import CompactThermalModel
from repro.units import celsius_to_kelvin


def core_powers(stack, watts=5.0):
    return {
        (layer.name, block.name): watts
        for layer, block in stack.iter_blocks()
        if block.kind == "core"
    }


@pytest.fixture(scope="module")
def two_phase_model():
    stack = build_3d_mpsoc(2, two_phase=True)
    return CompactThermalModel(stack, nx=12, ny=10)


def test_builder_produces_two_phase_cavities():
    stack = build_3d_mpsoc(2, two_phase=True)
    assert all(isinstance(c, TwoPhaseCavity) for c in stack.cavities)
    assert "two-phase" in stack.name


def test_refrigerant_liquid_view():
    liquid = refrigerant_liquid(R245FA)
    assert liquid.density == R245FA.liquid_density
    assert liquid.conductivity == R245FA.liquid_conductivity
    assert "R245fa" in liquid.name


def test_energy_conservation(two_phase_model):
    powers = core_powers(two_phase_model.stack)
    field = two_phase_model.steady_state(powers)
    removed = two_phase_model.heat_removed_by_coolant(field)
    assert removed == pytest.approx(sum(powers.values()), rel=1e-6)


def test_cavity_is_essentially_isothermal(two_phase_model):
    """Section III: evaporation absorbs heat 'without an increase in its
    temperature' — unlike the 20+ K gradient of single-phase water."""
    powers = core_powers(two_phase_model.stack)
    field = two_phase_model.steady_state(powers)
    cavity = field.layer("cavity0")
    assert cavity.max() - cavity.min() < 0.1


def test_two_phase_cooler_and_more_uniform_than_water():
    powers = None
    results = {}
    for two_phase in (False, True):
        stack = build_3d_mpsoc(2, two_phase=two_phase)
        powers = core_powers(stack)
        model = CompactThermalModel(stack, nx=12, ny=10)
        field = model.steady_state(powers)
        die = field.layer("tier0_die")
        results[two_phase] = (field.max(), die.max() - die.min())
    assert results[True][0] < results[False][0]  # cooler peak
    assert results[True][1] < 0.5 * results[False][1]  # flatter die


def test_fluid_sits_at_saturation(two_phase_model):
    stack = two_phase_model.stack
    cavity = stack.cavities[0]
    field = two_phase_model.steady_state(core_powers(stack))
    fluid = field.layer("cavity0")
    assert fluid.mean() == pytest.approx(cavity.saturation_k, abs=0.1)


def test_boiling_htc_magnitude():
    cavity = build_3d_mpsoc(2, two_phase=True).cavities[0]
    h = cavity.boiling_htc()
    assert 5e3 < h < 2e5


def test_refrigerant_choice_respected():
    stack = build_3d_mpsoc(2, two_phase=True, refrigerant=R245FA)
    assert stack.cavities[0].refrigerant is R245FA


def test_dryout_limited_power():
    cavity = build_3d_mpsoc(2, two_phase=True).cavities[0]
    h_fg = R134A.latent_heat(cavity.saturation_k)
    assert cavity.dryout_limited_power(1e-3) == pytest.approx(1e-3 * h_fg)
    # Inlet quality eats into the margin.
    assert cavity.dryout_limited_power(1e-3, inlet_quality=0.5) == pytest.approx(
        0.5e-3 * h_fg
    )
    with pytest.raises(ValueError):
        cavity.dryout_limited_power(0.0)
    with pytest.raises(ValueError):
        cavity.dryout_limited_power(1e-3, inlet_quality=1.0)


def test_transient_supported(two_phase_model):
    from repro.thermal import TransientStepper

    powers = core_powers(two_phase_model.stack)
    steady = two_phase_model.steady_state(powers)
    stepper = TransientStepper(two_phase_model, dt=0.1, initial=steady)
    stepper.run(powers, duration=1.0)
    assert stepper.state.max() == pytest.approx(steady.max(), abs=1e-3)


def test_validation():
    stack = build_3d_mpsoc(2, two_phase=True)
    cavity = stack.cavities[0]
    with pytest.raises(ValueError):
        TwoPhaseCavity(
            name="bad",
            geometry=cavity.geometry,
            saturation_k=-1.0,
        )
    with pytest.raises(ValueError):
        TwoPhaseCavity(
            name="bad",
            geometry=cavity.geometry,
            design_flux=0.0,
        )
