"""Homogeneous two-phase pressure gradient."""

import pytest
from hypothesis import given, strategies as st

from repro.hydraulics import (
    homogeneous_density,
    homogeneous_viscosity,
    two_phase_pressure_gradient,
)
from repro.hydraulics.twophase_dp import accelerational_gradient
from repro.materials import R245FA

T = 303.15
DH = 147e-6


def test_density_limits():
    rho_liquid = homogeneous_density(R245FA, T, 0.0)
    rho_vapour = homogeneous_density(R245FA, T, 1.0)
    assert rho_liquid == pytest.approx(R245FA.liquid_density)
    assert rho_vapour == pytest.approx(R245FA.vapour_density(T))


@given(st.floats(0.0, 1.0))
def test_density_monotone_decreasing_in_quality(x):
    if x < 0.99:
        assert homogeneous_density(R245FA, T, x + 0.01) < homogeneous_density(
            R245FA, T, x
        )


def test_viscosity_limits():
    mu_l = homogeneous_viscosity(R245FA, 0.0)
    mu_v = homogeneous_viscosity(R245FA, 1.0)
    assert mu_l == pytest.approx(R245FA.liquid_viscosity)
    assert mu_v == pytest.approx(R245FA.liquid_viscosity * 0.25)


def test_gradient_increases_with_quality():
    g = 60.0
    low = two_phase_pressure_gradient(R245FA, T, 0.05, g, DH)
    high = two_phase_pressure_gradient(R245FA, T, 0.4, g, DH)
    assert high > low


def test_gradient_increases_with_mass_flux():
    low = two_phase_pressure_gradient(R245FA, T, 0.2, 50.0, DH)
    high = two_phase_pressure_gradient(R245FA, T, 0.2, 100.0, DH)
    assert high > low


def test_zero_mass_flux_zero_gradient():
    assert two_phase_pressure_gradient(R245FA, T, 0.2, 0.0, DH) == 0.0


def test_laminar_branch_linearity():
    # Deep laminar: dp/dz ~ f G^2 with f = 16/Re ~ 1/G  =>  dp/dz ~ G.
    g1 = two_phase_pressure_gradient(R245FA, T, 0.2, 20.0, DH)
    g2 = two_phase_pressure_gradient(R245FA, T, 0.2, 40.0, DH)
    assert g2 == pytest.approx(2 * g1, rel=1e-6)


def test_accelerational_gradient_sign():
    # Evaporation (dx/dz > 0) accelerates the flow: pressure drops.
    grad = accelerational_gradient(R245FA, T, 0.1, 10.0, 60.0)
    assert grad > 0.0
    # Condensation recovers pressure.
    assert accelerational_gradient(R245FA, T, 0.1, -10.0, 60.0) < 0.0


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        homogeneous_density(R245FA, T, 1.5)
    with pytest.raises(ValueError):
        homogeneous_viscosity(R245FA, -0.1)
    with pytest.raises(ValueError):
        two_phase_pressure_gradient(R245FA, T, 0.2, -1.0, DH)
    with pytest.raises(ValueError):
        two_phase_pressure_gradient(R245FA, T, 0.2, 60.0, 0.0)
