"""Unit-conversion helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_celsius_kelvin_roundtrip():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert units.kelvin_to_celsius(373.15) == pytest.approx(100.0)


@given(st.floats(-200.0, 2000.0))
def test_temperature_roundtrip_is_identity(t):
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(t)) == pytest.approx(t)


def test_flow_rate_conversion_table_i_values():
    # Table I: 32.3 ml/min is quoted as 0.0323 l/min in Section IV-A.
    q = units.ml_per_min_to_m3_per_s(32.3)
    assert q == pytest.approx(0.0323e-3 / 60.0)
    assert units.m3_per_s_to_ml_per_min(q) == pytest.approx(32.3)


@given(st.floats(1e-6, 1e6))
def test_flow_roundtrip(flow):
    assert units.m3_per_s_to_ml_per_min(
        units.ml_per_min_to_m3_per_s(flow)
    ) == pytest.approx(flow)


def test_heat_flux_conversion():
    # Section II-C quotes 250 W/cm^2 hot spots.
    assert units.w_per_cm2_to_w_per_m2(250.0) == pytest.approx(2.5e6)
    assert units.w_per_m2_to_w_per_cm2(2.5e6) == pytest.approx(250.0)


def test_area_and_length_conversions():
    assert units.mm2_to_m2(115.0) == pytest.approx(115e-6)
    assert units.m2_to_mm2(115e-6) == pytest.approx(115.0)
    assert units.um_to_m(85.0) == pytest.approx(85e-6)
    assert units.mm_to_m(0.15) == pytest.approx(0.15e-3)


def test_pressure_conversions():
    assert units.bar_to_pa(0.9) == pytest.approx(9e4)
    assert units.pa_to_bar(101325.0) == pytest.approx(1.01325)
