"""Validation of the compact model against closed-form solutions.

Uniform power on a laterally adiabatic stack reduces the finite-volume
model to exact 1-D series-resistance networks; these tests pin the
model's conductance assembly against hand-derived expressions.
"""

import numpy as np
import pytest

from repro.geometry import Block, Cavity, Floorplan, Layer, StackDesign, CoolingMode
from repro.geometry.stack import default_channel_geometry
from repro.heat_transfer.convection import cavity_effective_htc
from repro.materials import SILICON, WATER
from repro.materials.solids import THERMAL_INTERFACE
from repro.thermal import CompactThermalModel
from repro.units import ml_per_min_to_m3_per_s

DIE = 10e-3
POWER = 50.0


def uniform_floorplan():
    return Floorplan(
        DIE, DIE, [Block("all", 0.0, 0.0, DIE, DIE, kind="core")], name="uniform"
    )


def test_air_stack_matches_series_resistance():
    """Die -> TIM -> sink -> ambient, uniform power: exact 1-D chain."""
    die = Layer("die", SILICON, 0.15e-3, floorplan=uniform_floorplan())
    tim = Layer("tim", THERMAL_INTERFACE, 0.1e-3)
    stack = StackDesign(
        name="1d air",
        width=DIE,
        height=DIE,
        elements=[die, tim],
        cooling_mode=CoolingMode.AIR,
    )
    model = CompactThermalModel(stack, nx=10, ny=10)
    field = model.steady_state({("die", "all"): POWER})

    area = DIE * DIE
    r_die_tim = 0.15e-3 / (2 * SILICON.conductivity * area) + 0.1e-3 / (
        2 * THERMAL_INTERFACE.conductivity * area
    )
    r_tim_sink = 0.1e-3 / (2 * THERMAL_INTERFACE.conductivity * area)
    r_sink = 1.0 / stack.sink_conductance

    expected_die = model.ambient + POWER * (r_sink + r_tim_sink + r_die_tim)
    die_mean = field.layer("die").mean()
    assert die_mean == pytest.approx(expected_die, abs=1e-6)

    expected_sink = model.ambient + POWER * r_sink
    assert field.sink_temperature() == pytest.approx(expected_sink, abs=1e-6)

    # Uniform power + adiabatic sides: the die is isothermal in-plane.
    die_map = field.layer("die")
    assert die_map.max() - die_map.min() < 1e-9


def test_liquid_stack_matches_advection_film_chain():
    """Base / cavity / die with uniform power: linear fluid heating plus
    a constant convective-film and half-die offset."""
    geometry = default_channel_geometry(length=DIE, span=DIE)
    stack = StackDesign(
        name="1d liquid",
        width=DIE,
        height=DIE,
        elements=[
            Layer("base", SILICON, 0.3e-3),
            Cavity("cavity", geometry),
            Layer("die", SILICON, 0.15e-3, floorplan=uniform_floorplan()),
        ],
    )
    model = CompactThermalModel(stack, nx=20, ny=10)
    flow = 20.0
    model.set_flow(flow)
    field = model.steady_state({("die", "all"): POWER})

    capacity = WATER.heat_capacity_rate(ml_per_min_to_m3_per_s(flow))
    area = DIE * DIE
    h_eff = cavity_effective_htc(geometry, WATER)
    r_film = 1.0 / (h_eff * area)
    r_half_die = 0.15e-3 / (2 * SILICON.conductivity * area)

    # Mean fluid temperature: inlet + P/(2 mdot cp) (uniform pickup).
    fluid_mean = field.layer("cavity").mean()
    expected_fluid_mean = model.inlet_temperature + POWER / (2 * capacity)
    assert fluid_mean == pytest.approx(expected_fluid_mean, rel=0.02)

    # Mean die temperature: fluid mean + film + half-die conduction.
    # The wall-conduction bypass (die -> walls -> base) carries a small
    # share of the heat around the film, so allow a few percent.
    die_mean = field.layer("die").mean()
    expected_die_mean = expected_fluid_mean + POWER * (r_film + r_half_die)
    assert die_mean == pytest.approx(expected_die_mean, rel=0.05)

    # Fluid heats monotonically and near-linearly along the flow
    # direction (axial conduction in die and base smears the pickup at
    # the two ends, so the increments are not perfectly uniform).
    fluid = field.layer("cavity")
    profile = fluid.mean(axis=0)
    increments = np.diff(profile)
    assert np.all(increments > 0.0)
    assert increments.std() / increments.mean() < 0.2


def test_outlet_rise_exact_energy_balance():
    geometry = default_channel_geometry(length=DIE, span=DIE)
    stack = StackDesign(
        name="balance",
        width=DIE,
        height=DIE,
        elements=[
            Layer("base", SILICON, 0.3e-3),
            Cavity("cavity", geometry),
            Layer("die", SILICON, 0.15e-3, floorplan=uniform_floorplan()),
        ],
    )
    model = CompactThermalModel(stack, nx=20, ny=10)
    field = model.steady_state({("die", "all"): POWER})
    capacity = WATER.heat_capacity_rate(
        ml_per_min_to_m3_per_s(model.flow_ml_min)
    )
    outlet_mean = field.layer("cavity")[:, -1].mean()
    # The outlet column sits half a cell from the true outlet; the
    # missing pickup is half a cell's worth of the total.
    expected = model.inlet_temperature + POWER / capacity * (1 - 0.5 / 20)
    assert outlet_mean == pytest.approx(expected, rel=0.01)
