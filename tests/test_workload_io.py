"""Trace CSV import/export."""

import numpy as np
import pytest

from repro.workload import (
    WorkloadTrace,
    load_trace_csv,
    save_trace_csv,
    web_server_trace,
)


def test_roundtrip(tmp_path):
    original = web_server_trace(threads=8, duration=20, seed=9)
    path = tmp_path / "web.csv"
    save_trace_csv(original, path)
    loaded = load_trace_csv(path)
    assert loaded.name == "web"
    assert loaded.threads == 8
    assert loaded.intervals == 20
    assert np.allclose(loaded.utilisation, original.utilisation, atol=1e-5)


def test_percent_detection(tmp_path):
    path = tmp_path / "percent.csv"
    path.write_text("thread0,thread1\n50,75\n100,0\n")
    trace = load_trace_csv(path)
    assert trace.utilisation[0, 0] == pytest.approx(0.5)
    assert trace.utilisation[1, 0] == pytest.approx(1.0)


def test_fraction_detection(tmp_path):
    path = tmp_path / "frac.csv"
    path.write_text("0.5,0.75\n1.0,0.0\n")
    trace = load_trace_csv(path)
    assert trace.utilisation[0, 1] == pytest.approx(0.75)


def test_custom_name_and_period(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("0.1,0.2\n")
    trace = load_trace_csv(path, name="custom", period=2.0)
    assert trace.name == "custom"
    assert trace.period == 2.0
    assert trace.duration == 2.0


def test_rejects_bad_data(tmp_path):
    over = tmp_path / "over.csv"
    over.write_text("150,20\n")
    with pytest.raises(ValueError, match="above 100"):
        load_trace_csv(over)

    negative = tmp_path / "neg.csv"
    negative.write_text("-5,20\n")
    with pytest.raises(ValueError, match="negative"):
        load_trace_csv(negative)

    empty = tmp_path / "empty.csv"
    empty.write_text("header,only\n")
    with pytest.raises(ValueError, match="no data"):
        load_trace_csv(empty)

    mixed = tmp_path / "mixed.csv"
    mixed.write_text("1,2\nfoo,bar\n")
    with pytest.raises(ValueError, match="non-numeric"):
        load_trace_csv(mixed)


def test_loaded_trace_drives_simulator(tmp_path):
    from repro.core import LiquidLoadBalancing, SystemSimulator
    from repro.geometry import build_3d_mpsoc

    trace = WorkloadTrace("t", np.full((3, 32), 0.5))
    path = tmp_path / "sim.csv"
    save_trace_csv(trace, path)
    loaded = load_trace_csv(path)
    result = SystemSimulator(
        build_3d_mpsoc(2), LiquidLoadBalancing(), loaded, nx=12, ny=10
    ).run()
    assert result.duration == pytest.approx(3.0)
